"""Stabilizer-tableau equivalence checking (reproduction extension).

Equivalence checking is QMA-complete in general (paper Section 3), but on
the *Clifford fragment* it is polynomial: two Clifford circuits are
equivalent up to global phase iff they conjugate every Pauli generator
identically, i.e. iff their tableaus coincide.  This checker decides that
in ``O(n^2 m)`` time and yields ``NO_INFORMATION`` as soon as either
circuit leaves the Clifford group — a cheap pre-check that complements the
two general paradigms of the case study (and a third, independent engine
the test suite cross-validates DD and ZX against).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import _check_deadline
from repro.ec.permutations import to_logical_form
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.stab.tableau import CliffordTableau, NonCliffordGateError


def stabilizer_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Exact Clifford equivalence via tableau comparison.

    Returns ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` / ``NOT_EQUIVALENT`` for
    Clifford pairs and ``NO_INFORMATION`` when a non-Clifford gate occurs
    (the method simply does not apply — mirroring how the ZX checker
    reports an unfinished reduction).
    """
    config = configuration or Configuration()
    start = time.monotonic()
    _check_deadline(deadline)
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    logical1, _ = to_logical_form(
        circuit1, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    logical2, _ = to_logical_form(
        circuit2, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    try:
        tableau1 = CliffordTableau.from_circuit(logical1)
        _check_deadline(deadline)
        tableau2 = CliffordTableau.from_circuit(logical2)
        _check_deadline(deadline)
    except NonCliffordGateError as reason:
        return EquivalenceCheckingResult(
            Equivalence.NO_INFORMATION,
            "stabilizer",
            time.monotonic() - start,
            {"reason": str(reason)},
        )
    verdict = (
        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        if tableau1 == tableau2
        else Equivalence.NOT_EQUIVALENT
    )
    return EquivalenceCheckingResult(
        verdict,
        "stabilizer",
        time.monotonic() - start,
        {"same_output_state": tableau1.same_state(tableau2)},
    )
