"""Decision-diagram based equivalence checking (paper Section 4.1).

Two strategies live here:

* :class:`ConstructionChecker` — build both circuits' complete system
  matrices as DDs and exploit canonicity: equal functions are represented
  by the very same node (the baseline the alternating scheme improves on).
* :class:`AlternatingChecker` — build the DD of ``G' G†`` starting from
  the identity "in the middle", alternating between applications of gates
  from ``G'`` (on the left) and inverted gates from ``G`` (on the right)
  as directed by an *oracle*, so the intermediate diagram stays as close
  to the identity as possible.  Since the product ``U† U'`` is constructed
  anyway, the Hilbert-Schmidt check ``|tr(U† U')| ~ 2^n`` comes for free.

Both consume circuits in *logical form* (see
:mod:`repro.ec.permutations`), which realizes the permutation tracking and
SWAP reconstruction the paper describes.

Gates are merged into the accumulated product through the fast-path
``apply_gate_*`` kernels by default (only the diagram below a gate's top
qubit is traversed); ``Configuration.direct_application=False`` selects
the legacy full-height construction for ablations.  Every result carries
a ``perf`` statistics block (phase wall times, compute-table and
complex-table counters) produced by :mod:`repro.perf`.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.dd.array_package import ArrayDDPackage
from repro.dd.gates import (
    apply_operation_left,
    apply_operation_right,
)
from repro.dd.package import DDPackage
from repro.ec.configuration import Configuration
from repro.ec.permutations import to_logical_form
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
    EquivalenceCheckingTimeout,
)
from repro.perf import PerfCounters, package_statistics


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise EquivalenceCheckingTimeout()


def make_package(configuration: Configuration):
    """Construct the DD engine selected by ``Configuration.array_dd``.

    Both engines expose the same algebra and the same engine-uniform edge
    accessors (``edge_node`` / ``edge_weight`` / ``matrix_dd_size`` /
    ``vector_dd_size``), so every checker below runs unchanged on either.
    """
    cls = ArrayDDPackage if configuration.array_dd else DDPackage
    return cls(
        configuration.tolerance,
        compute_table_size=configuration.compute_table_size,
    )


def _phase_verdict(
    pkg: DDPackage, edge, num_qubits: int, threshold: float
) -> Equivalence:
    """Classify a product DD that should represent the identity."""
    if pkg.is_identity(edge, num_qubits, up_to_global_phase=False):
        return Equivalence.EQUIVALENT
    if pkg.is_identity(edge, num_qubits, up_to_global_phase=True):
        return Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
    # Canonicity failed structurally; fall back to the Hilbert-Schmidt
    # fidelity, which tolerates numerical noise (Section 3).
    fidelity = pkg.hilbert_schmidt_fidelity(edge, num_qubits)
    if abs(fidelity - 1.0) <= threshold:
        return Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
    return Equivalence.NOT_EQUIVALENT


class ConstructionChecker:
    """Build both full system-matrix DDs and compare canonical roots."""

    def __init__(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Optional[Configuration] = None,
    ) -> None:
        self.configuration = configuration or Configuration()
        num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
        self.num_qubits = num_qubits
        self.logical1, _ = to_logical_form(
            circuit1,
            num_qubits,
            self.configuration.elide_permutations,
            self.configuration.reconstruct_swaps,
        )
        self.logical2, _ = to_logical_form(
            circuit2,
            num_qubits,
            self.configuration.elide_permutations,
            self.configuration.reconstruct_swaps,
        )
        self.package = make_package(self.configuration)

    def run(self, deadline: Optional[float] = None) -> EquivalenceCheckingResult:
        start = time.monotonic()
        pkg = self.package
        direct = self.configuration.direct_application
        perf = PerfCounters()
        edges = []
        max_size = 0
        with perf.phase("construction"):
            for circuit in (self.logical1, self.logical2):
                accumulated = pkg.identity(self.num_qubits)
                for op in circuit:
                    _check_deadline(deadline)
                    accumulated = apply_operation_left(
                        pkg, accumulated, op, self.num_qubits, direct=direct
                    )
                    perf.count("gate_applications")
                    if self.configuration.trace_sizes:
                        max_size = max(
                            max_size, pkg.matrix_dd_size(accumulated)
                        )
                edges.append(accumulated)
        first, second = edges
        with perf.phase("verdict"):
            # Canonicity: equal functions share one node (object identity
            # in the legacy engine, handle equality in the array engine).
            if pkg.edge_node(first) == pkg.edge_node(second):
                weight_delta = abs(
                    pkg.edge_weight(first) - pkg.edge_weight(second)
                )
                if weight_delta <= 16 * pkg.tolerance:
                    verdict = Equivalence.EQUIVALENT
                else:
                    verdict = Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
            else:
                # Structural mismatch may still be numerical noise; decide via
                # the Hilbert-Schmidt inner product of U† U'.
                product = pkg.multiply(pkg.conjugate_transpose(first), second)
                fidelity = pkg.hilbert_schmidt_fidelity(product, self.num_qubits)
                if abs(fidelity - 1.0) <= self.configuration.fidelity_threshold:
                    verdict = Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
                else:
                    verdict = Equivalence.NOT_EQUIVALENT
        statistics = {
            "dd_size_1": pkg.matrix_dd_size(first),
            "dd_size_2": pkg.matrix_dd_size(second),
            "unique_nodes": pkg.num_unique_matrix_nodes(),
            "complex_table": pkg.complex_table.stats(),
            "perf": {**perf.as_dict(), **package_statistics(pkg)},
        }
        if self.configuration.trace_sizes:
            statistics["max_dd_size"] = max_size
        return EquivalenceCheckingResult(
            verdict, "construction", time.monotonic() - start, statistics
        )


class AlternatingChecker:
    """The alternating ``G' G†`` scheme with oracle-driven gate selection."""

    def __init__(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Optional[Configuration] = None,
    ) -> None:
        self.configuration = configuration or Configuration()
        num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
        self.num_qubits = num_qubits
        self.logical1, stats1 = to_logical_form(
            circuit1,
            num_qubits,
            self.configuration.elide_permutations,
            self.configuration.reconstruct_swaps,
        )
        self.logical2, stats2 = to_logical_form(
            circuit2,
            num_qubits,
            self.configuration.elide_permutations,
            self.configuration.reconstruct_swaps,
        )
        self.permutation_statistics = {"circuit1": stats1, "circuit2": stats2}
        self.package = make_package(self.configuration)

    # -- oracles ----------------------------------------------------------
    def _schedule_naive(self, m1: int, m2: int) -> List[int]:
        """Strict 1:1 alternation (side 1 = inverted G, side 2 = G')."""
        schedule = []
        for i in range(max(m1, m2)):
            if i < m1:
                schedule.append(1)
            if i < m2:
                schedule.append(2)
        return schedule

    def _schedule_compilation_flow(self) -> List[int]:
        """Per-gate cost profile oracle (Burgholzer et al., reference [38]).

        When ``G'`` is the *compiled* version of ``G``, each original gate
        expands into a predictable number of basis gates; applying one
        original gate followed by its expected expansion keeps the product
        at the identity through every gate boundary.  The profile is
        estimated by decomposing each original gate to the device basis
        and scaling to the actual compiled gate count (routing SWAPs make
        the true count larger than the profile sum).
        """
        from repro.compile.decompose import decompose_to_basis
        from repro.circuit.circuit import QuantumCircuit

        costs = []
        for op in self.logical1:
            single = QuantumCircuit(self.num_qubits, operations=[op])
            costs.append(max(1, len(decompose_to_basis(single))))
        total_cost = sum(costs)
        m2 = len(self.logical2)
        schedule: List[int] = []
        emitted2 = 0
        seen_cost = 0
        for cost in costs:
            schedule.append(1)
            seen_cost += cost
            target = round(m2 * seen_cost / total_cost) if total_cost else 0
            # repro: allow(deadline-prop): emitted2 increases to target <= m2
            while emitted2 < target:
                schedule.append(2)
                emitted2 += 1
        schedule.extend([2] * (m2 - emitted2))
        return schedule

    def _schedule_proportional(self, m1: int, m2: int) -> List[int]:
        """Alternation weighted by the gate-count ratio (QCEC default)."""
        if m1 == 0 or m2 == 0:
            return [1] * m1 + [2] * m2
        schedule = []
        taken1 = taken2 = 0
        # repro: allow(deadline-prop): every iteration takes one gate
        while taken1 < m1 or taken2 < m2:
            # Take from the side that is behind its proportional share.
            share1 = (taken1 + 1) / m1 if taken1 < m1 else float("inf")
            share2 = (taken2 + 1) / m2 if taken2 < m2 else float("inf")
            if share1 <= share2:
                schedule.append(1)
                taken1 += 1
            else:
                schedule.append(2)
                taken2 += 1
        return schedule

    def run(self, deadline: Optional[float] = None) -> EquivalenceCheckingResult:
        start = time.monotonic()
        pkg = self.package
        config = self.configuration
        direct = config.direct_application
        perf = PerfCounters()
        gates1 = [op.inverse() for op in self.logical1]  # applied right
        gates2 = list(self.logical2.operations)  # applied left
        accumulated = pkg.identity(self.num_qubits)
        max_size = 1
        trace: List[int] = []

        if config.oracle == "lookahead":
            with perf.phase("alternation"):
                index1 = index2 = 0
                while index1 < len(gates1) or index2 < len(gates2):
                    _check_deadline(deadline)
                    candidate1 = candidate2 = None
                    if index1 < len(gates1):
                        candidate1 = apply_operation_right(
                            pkg, accumulated, gates1[index1],
                            self.num_qubits, direct=direct,
                        )
                    if index2 < len(gates2):
                        candidate2 = apply_operation_left(
                            pkg, accumulated, gates2[index2],
                            self.num_qubits, direct=direct,
                        )
                    if candidate2 is None or (
                        candidate1 is not None
                        and pkg.matrix_dd_size(candidate1)
                        <= pkg.matrix_dd_size(candidate2)
                    ):
                        accumulated = candidate1
                        index1 += 1
                    else:
                        accumulated = candidate2
                        index2 += 1
                    perf.count("gate_applications")
                    size = pkg.matrix_dd_size(accumulated)
                    max_size = max(max_size, size)
                    if config.trace_sizes:
                        trace.append(size)
        else:
            with perf.phase("schedule"):
                if config.oracle == "naive":
                    schedule = self._schedule_naive(len(gates1), len(gates2))
                elif config.oracle == "compilation_flow":
                    schedule = self._schedule_compilation_flow()
                else:
                    schedule = self._schedule_proportional(
                        len(gates1), len(gates2)
                    )
            with perf.phase("alternation"):
                index1 = index2 = 0
                for side in schedule:
                    _check_deadline(deadline)
                    if side == 1:
                        accumulated = apply_operation_right(
                            pkg, accumulated, gates1[index1],
                            self.num_qubits, direct=direct,
                        )
                        index1 += 1
                    else:
                        accumulated = apply_operation_left(
                            pkg, accumulated, gates2[index2],
                            self.num_qubits, direct=direct,
                        )
                        index2 += 1
                    perf.count("gate_applications")
                    if config.trace_sizes:
                        size = pkg.matrix_dd_size(accumulated)
                        max_size = max(max_size, size)
                        trace.append(size)

        if not config.trace_sizes:
            max_size = max(max_size, pkg.matrix_dd_size(accumulated))
        with perf.phase("verdict"):
            verdict = _phase_verdict(
                pkg, accumulated, self.num_qubits, config.fidelity_threshold
            )
            fidelity = pkg.hilbert_schmidt_fidelity(
                accumulated, self.num_qubits
            )
        statistics = {
            "max_dd_size": max_size,
            "final_dd_size": pkg.matrix_dd_size(accumulated),
            "hilbert_schmidt_fidelity": fidelity,
            "unique_nodes": pkg.num_unique_matrix_nodes(),
            "permutations": self.permutation_statistics,
            "complex_table": pkg.complex_table.stats(),
            "perf": {**perf.as_dict(), **package_statistics(pkg)},
        }
        if config.trace_sizes:
            statistics["dd_size_trace"] = trace
        return EquivalenceCheckingResult(
            verdict, "alternating", time.monotonic() - start, statistics
        )


def construction_dd_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Functional wrapper around :class:`ConstructionChecker`."""
    return ConstructionChecker(circuit1, circuit2, configuration).run(deadline)


def alternating_dd_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Functional wrapper around :class:`AlternatingChecker`."""
    return AlternatingChecker(circuit1, circuit2, configuration).run(deadline)
