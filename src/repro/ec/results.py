"""Result types of an equivalence check."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class Equivalence(enum.Enum):
    """Verdict of an equivalence check.

    ``PROBABLY_EQUIVALENT`` is the simulation strategy's positive outcome:
    every random stimulus agreed, which is strong evidence but no proof
    (Section 6.2 discusses exactly this asymmetry).  ``NO_INFORMATION`` is
    the ZX checker's outcome when the reduced diagram is neither a
    permutation nor refutable — the incompleteness the paper highlights.
    """

    EQUIVALENT = "equivalent"
    EQUIVALENT_UP_TO_GLOBAL_PHASE = "equivalent_up_to_global_phase"
    PROBABLY_EQUIVALENT = "probably_equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    NO_INFORMATION = "no_information"
    TIMEOUT = "timeout"


#: Verdicts that count as a positive result in the case-study tables.
_POSITIVE = {
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    Equivalence.PROBABLY_EQUIVALENT,
}


@dataclass
class EquivalenceCheckingResult:
    """Outcome of one equivalence check.

    Attributes:
        equivalence: The verdict.
        strategy: Which strategy produced the verdict.
        time: Wall-clock seconds spent.
        statistics: Strategy-specific counters — e.g. ``max_dd_size``,
            ``simulations_run``, ``zx_rewrites``, ``spiders_remaining``,
            ``dd_size_trace``.
    """

    equivalence: Equivalence
    strategy: str
    time: float = 0.0
    statistics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view — the wire format of the isolation harness.

        Statistics are coerced through :func:`repro.perf.json_safe`, so
        the payload crossing the sandbox pipe (and landing in journals)
        is always plain JSON, never a pickle of live checker state.
        """
        from repro.perf import json_safe

        return {
            "equivalence": self.equivalence.value,
            "strategy": self.strategy,
            "time": self.time,
            "statistics": json_safe(self.statistics),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EquivalenceCheckingResult":
        """Reconstruct a result serialized with :meth:`to_dict`."""
        statistics = payload.get("statistics")
        time_value = payload.get("time", 0.0)
        return cls(
            Equivalence(payload["equivalence"]),
            str(payload.get("strategy", "")),
            float(time_value) if isinstance(time_value, (int, float)) else 0.0,
            dict(statistics) if isinstance(statistics, dict) else {},
        )

    @property
    def failure(self) -> Optional[Dict[str, object]]:
        """The structured failure record, if this is a degraded result."""
        failure = self.statistics.get("failure")
        return failure if isinstance(failure, dict) else None

    @property
    def considered_equivalent(self) -> bool:
        """True for any positive verdict (incl. probably-equivalent)."""
        return self.equivalence in _POSITIVE

    @property
    def proven(self) -> bool:
        """True if the verdict is a proof rather than evidence."""
        return self.equivalence in (
            Equivalence.EQUIVALENT,
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
            Equivalence.NOT_EQUIVALENT,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.equivalence.value} [{self.strategy}] in {self.time:.3f}s"
        )


class EquivalenceCheckingTimeout(Exception):
    """Raised internally when a checker exceeds its wall-clock budget."""
