"""ZX-calculus based equivalence checking (paper Section 5.1).

Both circuits are brought into logical form (handling layouts and output
permutations), converted to ZX-diagrams, composed as ``G' ∘ G†`` and
simplified with ``full_reduce``.  If the result is a bare-wire identity
diagram the circuits are equivalent (up to global phase — the scalar is
not tracked); a bare-wire *permutation* that does not match the expected
one, impossible here because logical form already folds the expected
permutation in, would mean non-equivalence.  If spiders remain, the method
yields ``NO_INFORMATION``: as the paper stresses, a stuck reduction is "a
strong indication" but *not* a proof of non-equivalence.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.permutations import to_logical_form
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
    EquivalenceCheckingTimeout,
)
from repro.perf import PerfCounters
from repro.zx.circuit_conv import circuit_to_zx
from repro.zx.simplify import (
    SimplificationTimeout,
    contract_unitary_chains,
    full_reduce,
)


def zx_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Check equivalence by reducing the composed ZX-diagram ``G' G†``."""
    config = configuration or Configuration()
    start = time.monotonic()
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    logical1, _ = to_logical_form(
        circuit1, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    logical2, _ = to_logical_form(
        circuit2, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    perf = PerfCounters()
    with perf.phase("compose"):
        diagram = circuit_to_zx(logical1).adjoint().compose(
            circuit_to_zx(logical2)
        )
    initial_spiders = diagram.num_spiders
    try:
        with perf.phase("simplify"):
            rewrites = full_reduce(
                diagram,
                deadline=deadline,
                incremental=config.incremental_zx,
                counters=perf,
            )
        # Reproduction extension: circuits decomposed with different Euler
        # conventions leave numerically-identity single-qubit chains the
        # symbolic rules cannot see; contract them and re-reduce.
        with perf.phase("chain_contraction"):
            while contract_unitary_chains(
                diagram, config.tolerance * 1e4, deadline=deadline
            ):
                rewrites += full_reduce(
                    diagram,
                    deadline=deadline,
                    incremental=config.incremental_zx,
                    counters=perf,
                )
    except SimplificationTimeout as exc:
        raise EquivalenceCheckingTimeout() from exc
    statistics = {
        "initial_spiders": initial_spiders,
        "spiders_remaining": diagram.num_spiders,
        "zx_rewrites": rewrites,
        "zx_engine": "incremental" if config.incremental_zx else "legacy",
        "perf": perf.as_dict(),
    }
    permutation = diagram.wire_permutation()
    if permutation is not None:
        identity = all(src == dst for src, dst in permutation.items())
        verdict = (
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
            if identity
            else Equivalence.NOT_EQUIVALENT
        )
        if not identity:
            statistics["residual_permutation"] = permutation
    else:
        verdict = Equivalence.NO_INFORMATION
    return EquivalenceCheckingResult(
        verdict, "zx", time.monotonic() - start, statistics
    )
