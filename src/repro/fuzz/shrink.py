"""Greedy minimization of a failing fuzz instance.

The shrinker operates on the *base* circuit of an instance, never on the
derived pair: after every candidate edit the pair is re-derived through
the instance's recipe (same recipe seed), so the ground-truth label
stays correct by construction and the oracle can be re-consulted.  Two
reductions are tried to a fixpoint:

* **gate removal** — drop one base gate at a time, keeping the removal
  whenever the oracle disagreement still reproduces;
* **qubit projection** — drop a wire no remaining gate touches,
  relabeling the wires above it down by one.

Every candidate costs one full oracle run, so the predicate budget is
bounded (``max_checks``); on exhaustion the best reduction found so far
is returned.  Greedy gate removal is quadratic in the worst case but the
bases are small (tens of gates), and a disagreement that reproduces on a
12-gate circuit is worth far more than a fast one on a 300-gate one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.fuzz.generator import FuzzInstance

#: Predicate deciding whether a candidate instance still fails.
Reproduces = Callable[[FuzzInstance], bool]


@dataclass
class ShrinkResult:
    """The minimized instance plus bookkeeping about the search."""

    instance: FuzzInstance
    original_gates: int
    checks: int = 0
    rounds: int = 0
    exhausted: bool = False

    @property
    def shrunk_gates(self) -> int:
        return len(self.instance.base)

    def describe(self) -> Dict[str, object]:
        return {
            "original_gates": self.original_gates,
            "shrunk_gates": self.shrunk_gates,
            "shrunk_qubits": self.instance.base.num_qubits,
            "oracle_checks": self.checks,
            "rounds": self.rounds,
            "exhausted": self.exhausted,
        }


def _without_gate(base: QuantumCircuit, index: int) -> QuantumCircuit:
    ops = list(base.operations)
    del ops[index]
    return QuantumCircuit(
        base.num_qubits,
        name=base.name,
        operations=ops,
        initial_layout=base.initial_layout,
        output_permutation=base.output_permutation,
    )


def _project_qubit(base: QuantumCircuit, qubit: int) -> Optional[QuantumCircuit]:
    """Drop wire ``qubit`` if unused; wires above shift down by one."""
    if any(qubit in op.qubits for op in base):
        return None
    if base.num_qubits <= 1:
        return None
    mapping = {
        q: (q if q < qubit else q - 1) for q in range(base.num_qubits)
    }
    out = QuantumCircuit(base.num_qubits - 1, name=base.name)
    for op in base:
        out.append(op.remapped(mapping))
    return out


def shrink_instance(
    instance: FuzzInstance,
    reproduces: Reproduces,
    max_checks: int = 200,
) -> ShrinkResult:
    """Greedily minimize ``instance`` while ``reproduces`` stays true.

    ``reproduces`` must return True for candidate instances on which the
    original disagreement still shows (and must tolerate recipes that no
    longer apply by returning False).  The instance passed in is assumed
    to reproduce; it is returned unchanged if no reduction survives.
    """
    result = ShrinkResult(instance, original_gates=len(instance.base))
    current = instance

    def attempt(candidate_base: QuantumCircuit) -> Optional[FuzzInstance]:
        if result.checks >= max_checks:
            result.exhausted = True
            return None
        result.checks += 1
        candidate = current.with_base(candidate_base)
        return candidate if reproduces(candidate) else None

    progress = True
    while progress and not result.exhausted:
        progress = False
        result.rounds += 1
        # Pass 1: gate removal, scanning from the back so indices of
        # not-yet-visited gates stay valid after a successful removal.
        index = len(current.base) - 1
        while index >= 0 and not result.exhausted:
            accepted = attempt(_without_gate(current.base, index))
            if accepted is not None:
                current = accepted
                progress = True
            index -= 1
        # Pass 2: project away wires freed by the removals.
        qubit = current.base.num_qubits - 1
        while qubit >= 0 and not result.exhausted:
            projected = _project_qubit(current.base, qubit)
            if projected is not None:
                accepted = attempt(projected)
                if accepted is not None:
                    current = accepted
                    progress = True
            qubit -= 1
    result.instance = current
    return result
