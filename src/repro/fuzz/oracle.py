"""The cross-paradigm differential oracle.

One labeled pair is pushed through every applicable strategy — the two
DD schemes (alternating, reference construction), both ZX simplification
engines (incremental worklist and legacy rescan), the stabilizer tableau
when the pair is Clifford, and the random-stimuli simulation — plus the
dense-unitary ground truth for widths up to ``dense_limit``.  Symbolic
pairs (the ``parameterized`` family) swap the whole concrete matrix for
the two ``parameterized``-strategy modes and a valuation-sampled ground
truth.  The oracle then classifies the verdict matrix:

* a *proven* positive (``EQUIVALENT`` / up-to-global-phase) next to a
  ``NOT_EQUIVALENT`` from another checker is always a disagreement —
  both claim proof, one is wrong;
* a checker contradicting the ground truth (dense unitary where
  available, the metamorphic label otherwise) is a disagreement;
* the dense unitary contradicting the *label* flags a mutator bug;
* ``PROBABLY_EQUIVALENT`` on a non-equivalent pair is **not** a
  disagreement — random stimuli are evidence, not proof (Section 6.2 of
  the paper); it is recorded as ``missed_by_simulation`` instead.
* ``NO_INFORMATION`` / ``TIMEOUT`` / degraded failures are recorded but
  never count as disagreements: an incomplete method saying "I don't
  know" is exactly the behaviour the paper describes.

Checker failures never abort the campaign: checks run through
:func:`repro.harness.run_check`, so a hang, OOM or crash in one strategy
degrades into a structured failure record (and with ``isolate=True`` is
contained in a sandboxed subprocess with a hard SIGKILL budget).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.unitary import (
    circuit_unitary,
    hilbert_schmidt_fidelity,
)
from repro.ec.configuration import Configuration
from repro.ec.permutations import to_logical_form
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.fuzz.generator import LabeledPair
from repro.fuzz.mutators import LABEL_EQUIVALENT, LABEL_NOT_EQUIVALENT

#: The strategies of the differential matrix: name → configuration
#: overrides applied on top of the oracle's base configuration.  The six
#: checker participants run with ``static_analysis=False`` so their
#: verdicts stay independent of the analyzer; the seventh participant IS
#: the static analyzer, so a sound-but-wrong static witness shows up as
#: an ordinary ``false_positive``-style disagreement against dense
#: ground truth and gets shrunk and persisted like any checker bug.
STRATEGY_MATRIX: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("dd_alternating", {"strategy": "alternating", "static_analysis": False}),
    ("dd_reference", {"strategy": "construction", "static_analysis": False}),
    (
        "zx_incremental",
        {"strategy": "zx", "incremental_zx": True, "static_analysis": False},
    ),
    (
        "zx_legacy",
        {"strategy": "zx", "incremental_zx": False, "static_analysis": False},
    ),
    ("stabilizer", {"strategy": "stabilizer", "static_analysis": False}),
    ("simulation", {"strategy": "simulation", "static_analysis": False}),
    ("static_analysis", {"strategy": "analysis"}),
)

#: The matrix for *symbolic* pairs: every concrete participant above
#: would refuse symbolic parameters (``InvalidInput``), so the oracle
#: differentials the two ``parameterized`` modes against each other and
#: against the valuation-sampled dense ground truth — symbolic-first
#: versus instantiate-only, mirroring the BENCH_parameterized split.
PARAMETERIZED_MATRIX: Tuple[Tuple[str, Dict[str, object]], ...] = (
    (
        "param_symbolic",
        {
            "strategy": "parameterized",
            "parameterized_symbolic": True,
            "static_analysis": False,
        },
    ),
    (
        "param_instantiate",
        {
            "strategy": "parameterized",
            "parameterized_symbolic": False,
            "static_analysis": False,
        },
    ),
)

#: The optional eighth participant: the concurrent strategy portfolio.
#: It races the same checkers as sandboxed children, so cross-checking
#: its verdict against the sequential matrix exercises the whole race
#: machinery (launch, kill, reap, verdict selection) per fuzzed pair.
PORTFOLIO_PARTICIPANT: Tuple[str, Dict[str, object]] = (
    "portfolio",
    {"strategy": "combined", "portfolio": True, "static_analysis": False},
)

#: Verdicts that constitute a *proof* of equivalence.
_PROVEN_POSITIVE = {
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
}

#: A hook rewriting one checker's result before classification — the
#: chaos-style seam the shrinking tests use to plant a buggy checker.
VerdictHook = Callable[
    [str, LabeledPair, EquivalenceCheckingResult], EquivalenceCheckingResult
]


@dataclass
class OracleReport:
    """The verdict matrix of one pair plus its classification."""

    label: str
    results: Dict[str, EquivalenceCheckingResult] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)
    truth: Optional[str] = None
    disagreements: List[Dict[str, object]] = field(default_factory=list)
    missed_by_simulation: bool = False

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def verdicts(self) -> Dict[str, str]:
        return {
            name: result.equivalence.value
            for name, result in self.results.items()
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "truth": self.truth,
            "verdicts": self.verdicts(),
            "skipped": dict(self.skipped),
            "disagreements": list(self.disagreements),
            "missed_by_simulation": self.missed_by_simulation,
        }


def _is_clifford_pair(pair: LabeledPair) -> bool:
    return all(
        op.is_clifford()
        for circuit in (pair.circuit1, pair.circuit2)
        for op in circuit
    )


class DifferentialOracle:
    """Runs the strategy matrix on labeled pairs and flags disagreements.

    Args:
        configuration: Base configuration; per-strategy overrides from
            :data:`STRATEGY_MATRIX` are applied on top.  Its ``timeout``
            bounds each individual check.
        isolate: Run every check in a sandboxed subprocess (hard
            wall-clock kill, optional memory ceiling) via
            :func:`repro.harness.run_check`.
        dense_limit: Maximum width for which the dense-unitary ground
            truth is computed (``2^n`` scaling; 8 ⇒ 256×256 matrices).
        verdict_hook: Optional rewrite of each checker result before
            classification (deterministic fault injection for tests).
        portfolio: Add the concurrent strategy portfolio
            (:data:`PORTFOLIO_PARTICIPANT`) to the matrix, so its raced
            verdict is cross-checked against every sequential checker
            and the ground truth on every pair.
    """

    def __init__(
        self,
        configuration: Optional[Configuration] = None,
        isolate: bool = False,
        dense_limit: int = 8,
        verdict_hook: Optional[VerdictHook] = None,
        portfolio: bool = False,
    ) -> None:
        self.configuration = configuration or Configuration(
            timeout=10.0, seed=0
        )
        self.isolate = isolate
        self.dense_limit = dense_limit
        self.verdict_hook = verdict_hook
        self.portfolio = portfolio

    # ------------------------------------------------------------------
    def _run_strategy(
        self, pair: LabeledPair, overrides: Dict[str, object]
    ) -> EquivalenceCheckingResult:
        config = dataclasses.replace(self.configuration, **overrides)
        if self.isolate:
            from repro.harness import run_check

            return run_check(
                pair.circuit1, pair.circuit2, config, isolate=True
            )
        from repro.ec.manager import EquivalenceCheckingManager

        manager = EquivalenceCheckingManager(
            pair.circuit1, pair.circuit2, config
        )
        return manager.run_single(str(overrides["strategy"]))

    def _dense_verdict(self, circuit1, circuit2, n: int) -> str:
        """Dense-unitary comparison of two *concrete* circuits."""
        config = self.configuration
        logical1, _ = to_logical_form(
            circuit1, n, config.elide_permutations, config.reconstruct_swaps
        )
        logical2, _ = to_logical_form(
            circuit2, n, config.elide_permutations, config.reconstruct_swaps
        )
        u1 = circuit_unitary(logical1)
        u2 = circuit_unitary(logical2)
        if np.allclose(u1, u2, atol=1e-8):
            return Equivalence.EQUIVALENT.value
        if abs(hilbert_schmidt_fidelity(u1, u2) - 1.0) < 1e-8:
            return Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE.value
        return Equivalence.NOT_EQUIVALENT.value

    def _dense_truth(self, pair: LabeledPair) -> Optional[str]:
        """Ground-truth verdict from explicit unitaries, or None if too wide."""
        n = pair.num_qubits
        if n > self.dense_limit:
            return None
        from repro.circuit.symbolic import is_symbolic_circuit

        if is_symbolic_circuit(pair.circuit1) or is_symbolic_circuit(
            pair.circuit2
        ):
            return self._dense_truth_symbolic(pair, n)
        return self._dense_verdict(pair.circuit1, pair.circuit2, n)

    def _dense_truth_symbolic(
        self, pair: LabeledPair, n: int
    ) -> Optional[str]:
        """Valuation-sampled ground truth for a symbolic pair.

        The planted witness valuation (when the mutator recorded one) is
        checked *first* — a breaking mutator's defect can be invisible at
        random valuations (e.g. a coefficient nudge vanishes wherever the
        nudged parameter is 0), so the witness must anchor the sample.
        ``NOT_EQUIVALENT`` at any valuation decides the pair; agreement
        everywhere is reported as the strongest verdict seen.
        """
        from repro.circuit.symbolic import (
            circuit_parameters,
            instantiate_circuit,
        )
        from repro.ec.param_checker import draw_valuations

        variables = tuple(
            sorted(
                set(circuit_parameters(pair.circuit1))
                | set(circuit_parameters(pair.circuit2))
            )
        )
        valuations: List[Dict[str, float]] = []
        witness = pair.witness.get("valuation")
        if isinstance(witness, dict):
            valuations.append(
                {name: float(witness.get(name, 0.0)) for name in variables}
            )
        valuations.extend(
            draw_valuations(variables, 8, self.configuration.seed)
        )
        exact = True
        for valuation in valuations:
            verdict = self._dense_verdict(
                instantiate_circuit(pair.circuit1, valuation),
                instantiate_circuit(pair.circuit2, valuation),
                n,
            )
            if verdict == Equivalence.NOT_EQUIVALENT.value:
                return verdict
            if verdict != Equivalence.EQUIVALENT.value:
                exact = False
        if exact:
            return Equivalence.EQUIVALENT.value
        return Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE.value

    # ------------------------------------------------------------------
    def check(self, pair: LabeledPair) -> OracleReport:
        """Run the full matrix on one pair and classify the verdicts."""
        report = OracleReport(label=pair.label)
        from repro.circuit.symbolic import is_symbolic_circuit

        symbolic = is_symbolic_circuit(pair.circuit1) or is_symbolic_circuit(
            pair.circuit2
        )
        if symbolic:
            # Concrete checkers refuse symbolic parameters outright;
            # record the skips so campaign journals stay self-describing.
            matrix = PARAMETERIZED_MATRIX
            for name, _ in STRATEGY_MATRIX:
                report.skipped[name] = "symbolic pair"
            if self.portfolio:
                report.skipped[PORTFOLIO_PARTICIPANT[0]] = "symbolic pair"
        else:
            matrix = STRATEGY_MATRIX
            if self.portfolio:
                matrix = matrix + (PORTFOLIO_PARTICIPANT,)
        clifford = not symbolic and _is_clifford_pair(pair)
        for name, overrides in matrix:
            if name == "stabilizer" and not clifford:
                report.skipped[name] = "non-Clifford pair"
                continue
            result = self._run_strategy(pair, overrides)
            if self.verdict_hook is not None:
                result = self.verdict_hook(name, pair, result)
            report.results[name] = result
        report.truth = self._dense_truth(pair)
        self._classify(report)
        return report

    # ------------------------------------------------------------------
    def _classify(self, report: OracleReport) -> None:
        proven_pos = [
            name
            for name, result in report.results.items()
            if result.equivalence in _PROVEN_POSITIVE
        ]
        negative = [
            name
            for name, result in report.results.items()
            if result.equivalence is Equivalence.NOT_EQUIVALENT
        ]
        for pos in proven_pos:
            for neg in negative:
                report.disagreements.append(
                    {
                        "kind": "cross_checker",
                        "positive": pos,
                        "negative": neg,
                    }
                )
        # Ground truth: the dense unitary where computable, the
        # metamorphic label otherwise.
        truth_positive = (
            report.truth != Equivalence.NOT_EQUIVALENT.value
            if report.truth is not None
            else report.label == LABEL_EQUIVALENT
        )
        basis = "dense_unitary" if report.truth is not None else "label"
        if truth_positive:
            for name in negative:
                report.disagreements.append(
                    {"kind": "false_negative", "checker": name, "basis": basis}
                )
        else:
            for name in proven_pos:
                report.disagreements.append(
                    {"kind": "false_positive", "checker": name, "basis": basis}
                )
            sim = report.results.get("simulation")
            if (
                sim is not None
                and sim.equivalence is Equivalence.PROBABLY_EQUIVALENT
            ):
                report.missed_by_simulation = True
        if report.truth is not None:
            label_positive = report.label == LABEL_EQUIVALENT
            if label_positive != truth_positive:
                report.disagreements.append(
                    {
                        "kind": "label_vs_truth",
                        "label": report.label,
                        "truth": report.truth,
                    }
                )
