"""Differential fuzzing of the equivalence-checking paradigms.

The paper's case study argues that the DD and ZX paradigms must agree on
every ``(G, G')`` pair — equivalent, one gate missing, or a flipped CNOT
— yet a fixed benchmark table only ever exercises a fixed set of circuit
shapes.  This package turns the claim into a *generative* test:

* :mod:`repro.fuzz.generator` — a seeded random-instance generator
  producing circuits from tunable families (Clifford-only, Clifford+T,
  parameterized rotations, measurement-free ancillae) and labeled pairs
  via metamorphic mutation or the :mod:`repro.compile` pipeline,
* :mod:`repro.fuzz.mutators` — equivalence-preserving mutations (gate
  commutation, inverse-pair insertion, SWAP/permutation relabeling,
  rebasing) and equivalence-breaking ones with a known witness (gate
  deletion, CNOT flip, phase nudge), so every pair carries a ground
  truth label,
* :mod:`repro.fuzz.oracle` — the differential oracle running all six
  strategies (DD alternating/reference, ZX incremental/legacy,
  stabilizer when Clifford, random-stimuli simulation) plus the dense
  unitary ground truth for small widths, and flagging any disagreement,
* :mod:`repro.fuzz.shrink` — greedy minimization of a failing instance
  by gate removal and qubit projection while the disagreement
  reproduces,
* :mod:`repro.fuzz.corpus` — persistence of minimized repros as QASM
  plus a JSONL journal entry under a ``corpus/`` seed directory,
* :mod:`repro.fuzz.runner` — the campaign driver behind
  ``python -m repro fuzz`` (exit code 0 = no disagreements, 2 = a
  minimized repro was written).

Entry point::

    from repro.fuzz import FuzzSettings, run_fuzz

    outcome = run_fuzz(FuzzSettings(seed=0, budget=300, family="clifford_t"))
    outcome.exit_code  # 0 or 2
"""

from repro.fuzz.generator import (
    FAMILIES,
    FuzzInstance,
    LabeledPair,
    generate_instance,
    random_family_circuit,
)
from repro.fuzz.mutators import (
    BREAKING_MUTATORS,
    MUTATORS,
    PRESERVING_MUTATORS,
    MutationNotApplicable,
)
from repro.fuzz.oracle import DifferentialOracle, OracleReport
from repro.fuzz.shrink import shrink_instance
from repro.fuzz.corpus import persist_repro
from repro.fuzz.runner import FuzzOutcome, FuzzSettings, run_fuzz

__all__ = [
    "BREAKING_MUTATORS",
    "DifferentialOracle",
    "FAMILIES",
    "FuzzInstance",
    "FuzzOutcome",
    "FuzzSettings",
    "LabeledPair",
    "MUTATORS",
    "MutationNotApplicable",
    "OracleReport",
    "PRESERVING_MUTATORS",
    "generate_instance",
    "persist_repro",
    "random_family_circuit",
    "run_fuzz",
    "shrink_instance",
]
