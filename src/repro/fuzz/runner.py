"""The fuzz campaign driver behind ``python -m repro fuzz``.

A campaign walks ``budget`` seeded instances of one family, pushes every
derived pair through the differential oracle and, on a disagreement,
shrinks the instance and persists the minimized repro into the corpus
directory.  Everything is deterministic in ``seed``; a wall-clock cap
(``max_seconds``) can stop a campaign early without losing repros.

Exit-code contract (also honoured by ``make fuzz``):

* ``0`` — every pair agreed (no repro written),
* ``2`` — at least one disagreement was found, shrunk and persisted.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.ec.configuration import Configuration
from repro.fuzz.corpus import open_corpus_journal, persist_repro
from repro.fuzz.generator import (
    FAMILIES,
    FuzzInstance,
    MutationNotApplicable,
    generate_instance,
)
from repro.fuzz.oracle import DifferentialOracle, OracleReport, VerdictHook
from repro.fuzz.shrink import shrink_instance

#: Exit codes of the campaign (the CLI contract).
EXIT_AGREED = 0
EXIT_REPRO_WRITTEN = 2


@dataclass
class FuzzSettings:
    """Knobs of one fuzz campaign."""

    seed: int = 0
    budget: int = 100
    family: str = "clifford_t"
    num_qubits: Optional[int] = None
    num_gates: Optional[int] = None
    corpus_dir: str = "corpus"
    isolate: bool = False
    portfolio: bool = False
    check_timeout: float = 10.0
    max_seconds: Optional[float] = None
    shrink_checks: int = 150
    dense_limit: int = 8

    def validate(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown fuzz family {self.family!r}; pick one of {FAMILIES}"
            )
        if self.budget < 1:
            raise ValueError("budget must be at least 1")
        if self.check_timeout <= 0:
            raise ValueError("check_timeout must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if self.shrink_checks < 0:
            raise ValueError("shrink_checks must be non-negative")


@dataclass
class Disagreement:
    """One found, shrunk and persisted failure."""

    instance: FuzzInstance
    report: OracleReport
    shrink_info: Dict[str, object]
    path: Optional[str] = None


@dataclass
class FuzzOutcome:
    """Summary of one campaign."""

    settings: FuzzSettings
    pairs_run: int = 0
    recipe_counts: Dict[str, int] = field(default_factory=dict)
    label_counts: Dict[str, int] = field(default_factory=dict)
    missed_by_simulation: int = 0
    skipped_instances: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    stopped_early: bool = False
    seconds: float = 0.0
    leaked_children: int = 0
    witnesses_persisted: int = 0

    @property
    def exit_code(self) -> int:
        return EXIT_REPRO_WRITTEN if self.disagreements else EXIT_AGREED

    def describe(self) -> Dict[str, object]:
        return {
            "family": self.settings.family,
            "seed": self.settings.seed,
            "budget": self.settings.budget,
            "pairs_run": self.pairs_run,
            "recipes": dict(sorted(self.recipe_counts.items())),
            "labels": dict(sorted(self.label_counts.items())),
            "missed_by_simulation": self.missed_by_simulation,
            "disagreements": len(self.disagreements),
            "stopped_early": self.stopped_early,
            "seconds": round(self.seconds, 3),
            "leaked_children": self.leaked_children,
            "witnesses_persisted": self.witnesses_persisted,
        }


def run_fuzz(
    settings: FuzzSettings,
    verdict_hook: Optional[VerdictHook] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """Run one differential fuzzing campaign.

    ``verdict_hook`` is forwarded to the oracle — production campaigns
    leave it None; the chaos-style tests plant a lying checker there to
    prove the pipeline catches, shrinks and persists real bugs.
    """
    settings.validate()
    emit = log or (lambda _message: None)
    oracle = DifferentialOracle(
        configuration=Configuration(
            timeout=settings.check_timeout, seed=settings.seed
        ),
        isolate=settings.isolate,
        dense_limit=settings.dense_limit,
        verdict_hook=verdict_hook,
        portfolio=settings.portfolio,
    )
    outcome = FuzzOutcome(settings=settings)
    start = time.monotonic()
    # The corpus journal is opened lazily (on the first disagreement)
    # and owned by the campaign, so repeated repros share one handle.
    # The ``finally`` at the bottom is load-bearing: an early
    # KeyboardInterrupt (Ctrl-C mid-shrink, the common way to stop
    # ``fuzz --isolate``) must close the handle instead of leaking it.
    journal = None
    # Witness log for parameterized campaigns: every planted-NEQ pair
    # records its witness valuation (planted and checker-found), so a
    # campaign leaves an auditable trail of the defects it covered.
    witness_log = None

    def persist_witness(
        index: int, pair, report: OracleReport
    ) -> None:
        nonlocal witness_log
        planted = pair.witness.get("valuation")
        if pair.label != "not_equivalent" or not isinstance(planted, dict):
            return
        found = None
        for name, result in report.results.items():
            block = result.statistics.get("parameterized")
            if isinstance(block, dict) and "witness_valuation" in block:
                found = {
                    "checker": name,
                    "path": block.get("path"),
                    "valuation": block["witness_valuation"],
                }
                break
        if witness_log is None:
            corpus = Path(settings.corpus_dir)
            corpus.mkdir(parents=True, exist_ok=True)
            witness_log = (corpus / "witnesses.jsonl").open(
                "a", encoding="utf-8"
            )
        record = {
            "index": index,
            "family": settings.family,
            "recipe": pair.recipe,
            "witness": {
                key: value
                for key, value in pair.witness.items()
                if key != "valuation"
            },
            "planted_valuation": planted,
            "found": found,
            "truth": report.truth,
        }
        witness_log.write(json.dumps(record, sort_keys=True) + "\n")
        witness_log.flush()
        outcome.witnesses_persisted += 1

    def reproduces(candidate: FuzzInstance) -> bool:
        try:
            candidate_pair = candidate.build_pair()
        except MutationNotApplicable:
            return False
        return not oracle.check(candidate_pair).agreed

    try:
        for index in range(settings.budget):
            if (
                settings.max_seconds is not None
                and time.monotonic() - start > settings.max_seconds
            ):
                outcome.stopped_early = True
                emit(
                    f"wall-clock cap of {settings.max_seconds:.0f}s reached "
                    f"after {outcome.pairs_run} pairs"
                )
                break
            instance_seed = settings.seed * 1_000_000 + index
            try:
                instance, pair = generate_instance(
                    instance_seed,
                    settings.family,
                    num_qubits=settings.num_qubits,
                    num_gates=settings.num_gates,
                )
            except MutationNotApplicable:
                outcome.skipped_instances += 1
                continue
            report = oracle.check(pair)
            outcome.pairs_run += 1
            outcome.recipe_counts[pair.recipe] = (
                outcome.recipe_counts.get(pair.recipe, 0) + 1
            )
            outcome.label_counts[pair.label] = (
                outcome.label_counts.get(pair.label, 0) + 1
            )
            persist_witness(index, pair, report)
            if report.missed_by_simulation:
                outcome.missed_by_simulation += 1
            if report.agreed:
                if (index + 1) % 25 == 0:
                    emit(
                        f"[{index + 1}/{settings.budget}] all agreed "
                        f"({outcome.pairs_run} pairs checked)"
                    )
                continue

            emit(
                f"[{index + 1}/{settings.budget}] DISAGREEMENT on "
                f"{pair.recipe} pair (label={pair.label}): "
                f"{report.disagreements}"
            )
            shrunk = shrink_instance(
                instance, reproduces, max_checks=settings.shrink_checks
            )
            final_instance = shrunk.instance
            try:
                final_pair = final_instance.build_pair()
                final_report = oracle.check(final_pair)
            except MutationNotApplicable:  # pragma: no cover - shrink guards
                final_instance, final_pair, final_report = (
                    instance, pair, report
                )
            disagreement = Disagreement(
                final_instance, final_report, shrunk.describe()
            )
            if journal is None:
                journal = open_corpus_journal(settings.corpus_dir)
            path = persist_repro(
                settings.corpus_dir,
                final_instance,
                final_pair,
                final_report,
                shrink_info=disagreement.shrink_info,
                journal=journal,
            )
            disagreement.path = str(path)
            outcome.disagreements.append(disagreement)
            emit(
                f"  shrunk {shrunk.original_gates} -> {shrunk.shrunk_gates} "
                f"base gates in {shrunk.checks} oracle calls; repro at {path}"
            )
    finally:
        if journal is not None:
            journal.close()
        if witness_log is not None:
            witness_log.close()

    # Leak audit: every race/sandbox child must be SIGKILLed and reaped
    # by the time its check returns, so a campaign that leaves live
    # children behind has a harness bug worth failing loudly over.
    import multiprocessing

    outcome.leaked_children = len(multiprocessing.active_children())
    if outcome.leaked_children:
        emit(f"WARNING: {outcome.leaked_children} child process(es) leaked")
    outcome.seconds = time.monotonic() - start
    return outcome
