"""Seeded random-instance generation for the differential fuzzer.

A *family* fixes the gate alphabet and size range of the base circuits:

* ``clifford`` — Clifford-only circuits (the stabilizer checker applies,
  every strategy should be exact),
* ``clifford_t`` — Clifford+T with dyadic phases (the paper's reversible
  benchmarks live here),
* ``rotations`` — parameterized rotations with arbitrary angles (the
  compiled-circuit use-case; stresses numerical tolerances),
* ``ancilla`` — mid-range widths where extra measurement-free ancilla
  wires are touched through compute/uncompute sandwiches (the shape
  routing and synthesis flows emit),
* ``parameterized`` — ansatz templates whose rotation angles are
  symbolic :class:`~repro.circuit.symbolic.ParamExpr` over a few shared
  free parameters (the variational use-case; exercises the
  ``parameterized`` strategy and its symbolic mutators).

An *instance* couples a base circuit with a deterministic pair recipe:
one of the metamorphic mutators of :mod:`repro.fuzz.mutators`, or a
``compiled`` / ``optimized`` variant produced by :mod:`repro.compile`.
``FuzzInstance.build_pair`` is a pure function of the instance, so the
shrinker can re-derive a *labeled* pair from any shrunk base.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.fuzz.mutators import (
    LABEL_EQUIVALENT,
    MUTATORS,
    SYMBOLIC_MUTATORS,
    MutationNotApplicable,
)

#: The supported circuit families.  ``parameterized`` must stay last:
#: the instance RNG mixes ``FAMILIES.index(family)`` into its seed, so
#: reordering would silently re-roll every pinned campaign.
FAMILIES = ("clifford", "clifford_t", "rotations", "ancilla", "parameterized")

#: Pair recipes on top of the metamorphic mutators.
_COMPILE_RECIPES = ("compiled", "optimized")

#: All pair recipes over *concrete* circuits, in draw order.
RECIPES: Tuple[str, ...] = tuple(MUTATORS) + _COMPILE_RECIPES

#: Pair recipes for the ``parameterized`` family (symbolic mutators
#: only — the concrete recipes lean on numeric unitaries).
PARAMETERIZED_RECIPES: Tuple[str, ...] = tuple(SYMBOLIC_MUTATORS)


@dataclass(frozen=True)
class FamilySpec:
    """Gate alphabet and size range of one circuit family."""

    name: str
    gates: Tuple[str, ...]
    min_qubits: int = 2
    max_qubits: int = 5
    min_gates: int = 8
    max_gates: int = 24
    ancillae: Tuple[int, int] = (0, 0)

    def sample_width(self, rng: random.Random) -> Tuple[int, int]:
        """Draw ``(data_qubits, ancilla_qubits)``."""
        data = rng.randint(self.min_qubits, self.max_qubits)
        low, high = self.ancillae
        return data, (rng.randint(low, high) if high else 0)


_CLIFFORD_GATES = ("h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap")

FAMILY_SPECS: Dict[str, FamilySpec] = {
    "clifford": FamilySpec("clifford", _CLIFFORD_GATES),
    "clifford_t": FamilySpec(
        "clifford_t", _CLIFFORD_GATES + ("t", "tdg")
    ),
    "rotations": FamilySpec(
        "rotations", ("h", "rx", "ry", "rz", "p", "cx", "cz", "cp")
    ),
    "ancilla": FamilySpec(
        "ancilla",
        _CLIFFORD_GATES + ("t", "tdg"),
        min_qubits=3,
        max_qubits=5,
        min_gates=10,
        max_gates=24,
        ancillae=(1, 2),
    ),
    "parameterized": FamilySpec(
        "parameterized",
        ("rz", "ry", "rx", "p", "cx", "cz"),
        min_qubits=2,
        max_qubits=5,
        min_gates=8,
        max_gates=20,
    ),
}

#: Gates that take one rotation angle.
_ANGLE_GATES = {"rx", "ry", "rz", "p", "cp"}


def _random_angle(rng: random.Random) -> float:
    """A rotation angle bounded away from 0 (mod 2π) so no gate is an
    accidental identity — which keeps the gate-deletion label sound."""
    return rng.uniform(0.1, 2 * math.pi - 0.1)


#: Rational coefficients the ansatz generator attaches to its symbols —
#: kept to small denominators so exact cancellation in the symbolic
#: phase-polynomial / ZX paths is actually exercised.
_SYM_COEFFICIENTS = (
    Fraction(1),
    Fraction(-1),
    Fraction(1, 2),
    Fraction(-1, 2),
    Fraction(3, 2),
    Fraction(2),
    Fraction(1, 4),
)


def _random_symbolic_angle(rng: random.Random, symbols: Sequence[str]):
    """``c * theta_j``, occasionally with a dyadic-π constant offset."""
    from repro.circuit.symbolic import symbol

    expr = rng.choice(_SYM_COEFFICIENTS) * symbol(rng.choice(list(symbols)))
    if rng.random() < 0.25:
        expr = expr + rng.choice((1, 3, 5, 7)) * math.pi / 4
    return expr


def _random_ansatz(
    rng: random.Random, data: int, gates: int
) -> QuantumCircuit:
    """A hardware-efficient-style ansatz with shared free parameters.

    Alternates single-qubit rotation layers (angles are mostly
    :class:`~repro.circuit.symbolic.ParamExpr` over 1–3 shared symbols,
    mixed with a few concrete angles) with CX/CZ entangling ladders —
    the shape variational workloads hand to an equivalence checker.
    """
    from repro.circuit.symbolic import symbol

    symbols = [f"theta_{j}" for j in range(rng.randint(1, 3))]
    circuit = QuantumCircuit(data, name="fuzz_parameterized")
    wires = list(range(data))
    emitted = 0
    while emitted < gates:
        for q in wires:
            if emitted >= gates:
                break
            name = rng.choice(("rz", "ry", "rx", "p"))
            if rng.random() < 0.8:
                angle = _random_symbolic_angle(rng, symbols)
            else:
                angle = _random_angle(rng)
            circuit.add(name, [q], params=[angle])
            emitted += 1
        if data >= 2:
            for a, b in zip(wires[:-1], wires[1:]):
                if emitted >= gates:
                    break
                if rng.random() < 0.7:
                    if rng.random() < 0.5:
                        circuit.cx(a, b)
                    else:
                        circuit.cz(a, b)
                    emitted += 1
    from repro.circuit.symbolic import is_symbolic_circuit

    if not is_symbolic_circuit(circuit):
        # Degenerate draw (every angle came out concrete): force one
        # symbolic rotation so the symbolic mutators always apply.
        circuit.add("rz", [0], params=[symbol(symbols[0])])
    return circuit


def _emit_gate(
    circuit: QuantumCircuit,
    name: str,
    qubits: Sequence[int],
    rng: random.Random,
) -> None:
    """Append one random application of ``name`` on wires from ``qubits``."""
    if name in ("cx", "cz", "swap"):
        a, b = rng.sample(list(qubits), 2)
        getattr(circuit, name)(a, b)
    elif name == "cp":
        a, b = rng.sample(list(qubits), 2)
        circuit.cp(_random_angle(rng), a, b)
    elif name in _ANGLE_GATES:
        circuit.add(name, [rng.choice(list(qubits))], params=[_random_angle(rng)])
    else:
        circuit.add(name, [rng.choice(list(qubits))])


def random_family_circuit(
    family: str,
    rng: random.Random,
    num_qubits: Optional[int] = None,
    num_gates: Optional[int] = None,
) -> QuantumCircuit:
    """Generate one base circuit of the requested family.

    ``num_qubits`` / ``num_gates`` override the family's sampled sizes
    (``num_qubits`` counts data qubits; the ancilla family adds wires on
    top).
    """
    spec = family_spec(family)
    data, ancillae = spec.sample_width(rng)
    if num_qubits is not None:
        data = num_qubits
    gates = (
        num_gates
        if num_gates is not None
        else rng.randint(spec.min_gates, spec.max_gates)
    )
    if family == "parameterized":
        return _random_ansatz(rng, data, gates)
    total = data + ancillae
    circuit = QuantumCircuit(total, name=f"fuzz_{family}")
    data_wires = list(range(data))
    multi_qubit_ok = data >= 2
    names = [
        g
        for g in spec.gates
        if multi_qubit_ok or g not in ("cx", "cz", "swap", "cp")
    ]
    if ancillae:
        # Split the budget around compute/uncompute sandwiches: each
        # ancilla is written by a short coupling sequence V, used once,
        # then returned through V† — measurement-free by construction.
        budget = gates
        for anc in range(data, total):
            v = QuantumCircuit(total)
            for _ in range(rng.randint(1, 2)):
                v.cx(rng.choice(data_wires), anc)
                if rng.random() < 0.5:
                    v.add(rng.choice(("h", "s", "t")), [anc])
            for _ in range(max(1, budget // (2 * ancillae))):
                _emit_gate(circuit, rng.choice(names), data_wires, rng)
            for op in v:
                circuit.append(op)
            circuit.cz(anc, rng.choice(data_wires))
            for op in v.inverse():
                circuit.append(op)
        for _ in range(max(1, budget // 4)):
            _emit_gate(circuit, rng.choice(names), data_wires, rng)
    else:
        for _ in range(gates):
            _emit_gate(circuit, rng.choice(names), data_wires, rng)
    return circuit


def family_spec(family: str) -> FamilySpec:
    if family not in FAMILY_SPECS:
        raise ValueError(
            f"unknown fuzz family {family!r}; pick one of {FAMILIES}"
        )
    return FAMILY_SPECS[family]


@dataclass(frozen=True)
class LabeledPair:
    """A ``(G, G')`` pair with its ground-truth label.

    ``label`` is ``"equivalent"`` (possibly up to global phase) or
    ``"not_equivalent"``; ``witness`` describes the planted error or the
    preserving rewrite that produced ``circuit2``.
    """

    circuit1: QuantumCircuit
    circuit2: QuantumCircuit
    label: str
    recipe: str
    witness: Dict[str, object] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return max(self.circuit1.num_qubits, self.circuit2.num_qubits)

    @property
    def num_gates(self) -> int:
        return len(self.circuit1) + len(self.circuit2)


def build_pair(
    base: QuantumCircuit, recipe: str, recipe_seed: int
) -> LabeledPair:
    """Derive the labeled pair of an instance — a pure function.

    Raises :class:`MutationNotApplicable` when the recipe no longer
    applies to (a shrunk version of) the base circuit.
    """
    rng = random.Random(recipe_seed)
    if recipe in MUTATORS:
        mutant, label, witness = MUTATORS[recipe](base, rng)
        return LabeledPair(base.copy(), mutant, label, recipe, witness)
    if recipe in SYMBOLIC_MUTATORS:
        mutant, label, witness = SYMBOLIC_MUTATORS[recipe](base, rng)
        return LabeledPair(base.copy(), mutant, label, recipe, witness)
    if recipe == "compiled":
        from repro.compile import compile_circuit, line_architecture

        if len(base) == 0:
            raise MutationNotApplicable("nothing to compile")
        compiled = compile_circuit(
            base, line_architecture(max(2, base.num_qubits))
        )
        return LabeledPair(
            base.copy(),
            compiled,
            LABEL_EQUIVALENT,
            recipe,
            {"kind": "compiled", "device": f"line:{max(2, base.num_qubits)}"},
        )
    if recipe == "optimized":
        from repro.compile import decompose_to_basis, optimize_circuit

        if len(base) == 0:
            raise MutationNotApplicable("nothing to optimize")
        optimized = optimize_circuit(decompose_to_basis(base), level=2)
        return LabeledPair(
            base.copy(),
            optimized,
            LABEL_EQUIVALENT,
            recipe,
            {"kind": "optimized", "level": 2},
        )
    raise ValueError(f"unknown pair recipe {recipe!r}")


@dataclass(frozen=True)
class FuzzInstance:
    """One reproducible fuzz case: a base circuit plus a pair recipe."""

    family: str
    seed: int
    base: QuantumCircuit
    recipe: str
    recipe_seed: int

    def build_pair(self) -> LabeledPair:
        return build_pair(self.base, self.recipe, self.recipe_seed)

    def with_base(self, base: QuantumCircuit) -> "FuzzInstance":
        """The same instance over a (shrunk) base circuit."""
        return FuzzInstance(
            self.family, self.seed, base, self.recipe, self.recipe_seed
        )

    def describe(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "seed": self.seed,
            "recipe": self.recipe,
            "recipe_seed": self.recipe_seed,
            "base_qubits": self.base.num_qubits,
            "base_gates": len(self.base),
        }


def _instance_rng(family: str, seed: int) -> random.Random:
    # Mix the family index into the seed so campaigns over different
    # families with the same seed do not replay identical draws.
    return random.Random(seed * 1_000_003 + FAMILIES.index(family))


def generate_instance(
    seed: int,
    family: str = "clifford_t",
    num_qubits: Optional[int] = None,
    num_gates: Optional[int] = None,
    recipes: Optional[Sequence[str]] = None,
) -> Tuple[FuzzInstance, LabeledPair]:
    """Generate one instance and its labeled pair, deterministically.

    Recipes that do not apply to the drawn base circuit (e.g. a CNOT
    flip on a CNOT-free circuit) are redrawn a bounded number of times;
    the inverse-pair mutator always applies, so the loop terminates.
    """
    default = (
        PARAMETERIZED_RECIPES if family == "parameterized" else RECIPES
    )
    allowed = tuple(recipes) if recipes else default
    for name in allowed:
        if name not in RECIPES and name not in PARAMETERIZED_RECIPES:
            raise ValueError(f"unknown pair recipe {name!r}")
    rng = _instance_rng(family, seed)
    base = random_family_circuit(family, rng, num_qubits, num_gates)
    last_error: Optional[Exception] = None
    for _ in range(16):
        recipe = rng.choice(list(allowed))
        recipe_seed = rng.randrange(2**32)
        instance = FuzzInstance(family, seed, base, recipe, recipe_seed)
        try:
            return instance, instance.build_pair()
        except MutationNotApplicable as exc:
            last_error = exc
    raise MutationNotApplicable(
        f"no applicable recipe for seed {seed} in family {family!r}: "
        f"{last_error}"
    )
