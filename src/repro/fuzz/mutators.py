"""Metamorphic circuit mutators with ground-truth labels.

Every mutator maps a base circuit to a mutant plus a *label* that is
correct by construction:

* **Equivalence-preserving** mutations rewrite the circuit without
  changing its unitary (or change it only by a global phase): commuting
  adjacent gates, inserting a gate/inverse pair, relabeling qubits
  through a tracked permutation (with or without explicit routing
  SWAPs), and rebasing into the CX + single-qubit basis.
* **Equivalence-breaking** mutations carry a *witness* describing the
  planted error: deleting a (non-identity) gate, flipping a CNOT's
  control and target, or nudging a phase.  Each is provably
  non-equivalence-introducing: removing gate ``g`` from ``A g B`` leaves
  a circuit equivalent to the original iff ``g`` is proportional to the
  identity (``A B = c·A g B  ⇔  g = c⁻¹·I``), which the mutator rules
  out by checking ``g``'s local unitary; the same argument covers the
  CNOT flip (``cx(b,a)·cx(a,b)`` is a non-trivial basis permutation)
  and the phase nudge (a conjugated ``diag(1, e^{iε})`` is never
  scalar for small ``ε``).

All mutators are deterministic functions of ``(circuit, rng)``; the
shrinker re-applies them to shrunk bases with the same seed, so the
label survives minimization.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.circuit.unitary import (
    hilbert_schmidt_fidelity,
    operation_unitary,
)

#: Labels attached to generated pairs.
LABEL_EQUIVALENT = "equivalent"
LABEL_NOT_EQUIVALENT = "not_equivalent"

#: A mutation result: (mutant, label, witness description).
Mutation = Tuple[QuantumCircuit, str, Dict[str, object]]
Mutator = Callable[[QuantumCircuit, random.Random], Mutation]


class MutationNotApplicable(ValueError):
    """The mutator cannot be applied to this circuit (e.g. no CNOT)."""


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _compact_unitary(op: Operation) -> np.ndarray:
    """The operation's unitary on its own qubits only (controls included)."""
    qubits = sorted(op.qubits)
    remap = {q: i for i, q in enumerate(qubits)}
    return operation_unitary(op.remapped(remap), len(qubits))


def _is_identity_like(op: Operation, tol: float = 1e-9) -> bool:
    """True if the operation is proportional to the identity."""
    matrix = _compact_unitary(op)
    return abs(hilbert_schmidt_fidelity(matrix, np.eye(matrix.shape[0])) - 1.0) < tol


def _ops_commute(a: Operation, b: Operation) -> bool:
    """True if the two operations commute as unitaries."""
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    union = sorted(set(a.qubits) | set(b.qubits))
    if len(union) > 3:  # keep the numerical check tiny
        return False
    remap = {q: i for i, q in enumerate(union)}
    n = len(union)
    ua = operation_unitary(a.remapped(remap), n)
    ub = operation_unitary(b.remapped(remap), n)
    return np.allclose(ua @ ub, ub @ ua, atol=1e-12)


def _rebuilt(
    circuit: QuantumCircuit, operations: List[Operation], suffix: str
) -> QuantumCircuit:
    return QuantumCircuit(
        circuit.num_qubits,
        name=f"{circuit.name}_{suffix}",
        operations=operations,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )


# ---------------------------------------------------------------------------
# equivalence-preserving mutators
# ---------------------------------------------------------------------------
def commute_adjacent(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Swap one adjacent pair of commuting operations."""
    ops = list(circuit)
    candidates = [
        i for i in range(len(ops) - 1) if _ops_commute(ops[i], ops[i + 1])
    ]
    if not candidates:
        raise MutationNotApplicable("no adjacent commuting pair")
    index = rng.choice(candidates)
    ops[index], ops[index + 1] = ops[index + 1], ops[index]
    witness = {"kind": "commuted_pair", "index": index}
    return _rebuilt(circuit, ops, "commuted"), LABEL_EQUIVALENT, witness


#: Gates the inverse-pair mutator may insert (all invertible in our set).
_INSERTABLE_SINGLE = ("h", "s", "t", "x", "z", "sx")
_INSERTABLE_ROTATION = ("rz", "rx", "p")


def insert_inverse_pair(
    circuit: QuantumCircuit, rng: random.Random
) -> Mutation:
    """Insert ``g · g†`` at a random position."""
    n = circuit.num_qubits
    if n < 1:
        raise MutationNotApplicable("no qubits")
    choices = list(_INSERTABLE_SINGLE + _INSERTABLE_ROTATION)
    if n >= 2:
        choices += ["cx", "cz", "swap"]
    name = rng.choice(choices)
    if name in ("cx", "cz"):
        control, target = rng.sample(range(n), 2)
        gate = Operation(name[1:], (target,), (control,))
    elif name == "swap":
        a, b = rng.sample(range(n), 2)
        gate = Operation("swap", (a, b))
    elif name in _INSERTABLE_ROTATION:
        angle = rng.uniform(0.1, 2 * math.pi - 0.1)
        gate = Operation(name, (rng.randrange(n),), params=(angle,))
    else:
        gate = Operation(name, (rng.randrange(n),))
    ops = list(circuit)
    index = rng.randrange(len(ops) + 1)
    ops[index:index] = [gate, gate.inverse()]
    witness = {"kind": "inverse_pair", "index": index, "gate": str(gate)}
    return _rebuilt(circuit, ops, "invpair"), LABEL_EQUIVALENT, witness


def swap_relabel(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Relabel qubits by a random permutation, declared via the layout.

    The mutant's wire ``π(q)`` carries logical qubit ``q``; the initial
    layout and output permutation both record the inverse map, so
    :func:`repro.ec.permutations.to_logical_form` folds the relabeling
    away and every strategy must report equivalence.
    """
    n = circuit.num_qubits
    if n < 2:
        raise MutationNotApplicable("need at least two qubits to permute")
    perm = list(range(n))
    while perm == list(range(n)):
        rng.shuffle(perm)
    mapping = {q: perm[q] for q in range(n)}
    mutant = circuit.remapped(mapping)
    mutant.name = f"{circuit.name}_relabel"
    layout = {perm[q]: q for q in range(n)}
    mutant.initial_layout = dict(layout)
    mutant.output_permutation = dict(layout)
    witness = {"kind": "relabeled", "permutation": mapping}
    return mutant, LABEL_EQUIVALENT, witness


def routed_swaps(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Insert explicit routing SWAPs and declare the final layout.

    Mimics what a router does: at random points the mutant physically
    swaps two wires (an explicit ``swap`` gate) and all later gates
    follow the moved logical qubits; the resulting wire→logical map is
    declared as the output permutation.
    """
    n = circuit.num_qubits
    ops = list(circuit)
    if n < 2:
        raise MutationNotApplicable("need at least two qubits to route")
    num_swaps = rng.randint(1, min(3, max(1, len(ops))))
    positions = sorted(
        rng.choice(range(len(ops) + 1)) for _ in range(num_swaps)
    )
    wire_of = list(range(n))  # logical qubit -> physical wire
    out = QuantumCircuit(n, name=f"{circuit.name}_routed")
    swapped: List[Tuple[int, int]] = []

    def insert_swap() -> None:
        a, b = rng.sample(range(n), 2)
        out.swap(wire_of[a], wire_of[b])
        wire_of[a], wire_of[b] = wire_of[b], wire_of[a]
        swapped.append((a, b))

    for index, op in enumerate(ops):
        while positions and positions[0] == index:
            positions.pop(0)
            insert_swap()
        out.append(op.remapped({q: wire_of[q] for q in range(n)}))
    while positions:
        positions.pop(0)
        insert_swap()
    out.output_permutation = {wire_of[q]: q for q in range(n)}
    witness = {"kind": "routed", "swaps": swapped}
    return out, LABEL_EQUIVALENT, witness


def rebase(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Rewrite into the CX + single-qubit basis (global phase allowed)."""
    from repro.compile import decompose_to_basis, decompose_to_cx_and_singles

    lower = rng.choice((decompose_to_cx_and_singles, decompose_to_basis))
    mutant = lower(circuit)
    mutant.name = f"{circuit.name}_rebased"
    witness = {"kind": "rebased", "pass": lower.__name__}
    return mutant, LABEL_EQUIVALENT, witness


# ---------------------------------------------------------------------------
# equivalence-breaking mutators (label carries a witness)
# ---------------------------------------------------------------------------
def delete_gate(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Remove one gate that is not proportional to the identity."""
    ops = list(circuit)
    candidates = [
        i for i, op in enumerate(ops) if not _is_identity_like(op)
    ]
    if not candidates:
        raise MutationNotApplicable("no non-identity gate to delete")
    index = rng.choice(candidates)
    removed = ops.pop(index)
    witness = {"kind": "gate_deleted", "index": index, "gate": str(removed)}
    return (
        _rebuilt(circuit, ops, "gate_missing"),
        LABEL_NOT_EQUIVALENT,
        witness,
    )


def flip_cnot(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Exchange control and target of one CNOT."""
    ops = list(circuit)
    candidates = [
        i
        for i, op in enumerate(ops)
        if op.name == "x" and len(op.controls) == 1
    ]
    if not candidates:
        raise MutationNotApplicable("no CNOT to flip")
    index = rng.choice(candidates)
    op = ops[index]
    ops[index] = Operation("x", op.controls, op.targets)
    witness = {
        "kind": "flipped_cnot",
        "index": index,
        "control": op.controls[0],
        "target": op.targets[0],
    }
    return (
        _rebuilt(circuit, ops, "flipped_cnot"),
        LABEL_NOT_EQUIVALENT,
        witness,
    )


def phase_nudge(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Nudge one rotation angle, or insert a small diagonal phase.

    The planted error is diagonal, the class of error the paper's
    classical random stimuli are structurally blind to — the oracle must
    rely on the proving strategies to catch it.
    """
    delta = rng.uniform(0.05, 0.45) * rng.choice((-1.0, 1.0))
    ops = list(circuit)
    rotations = [
        i
        for i, op in enumerate(ops)
        if op.params and op.name in ("rx", "ry", "rz", "p", "rzz", "rxx")
    ]
    rng.shuffle(rotations)
    for index in rotations:
        op = ops[index]
        nudged = Operation(
            op.name,
            op.targets,
            op.controls,
            (op.params[0] + delta,) + op.params[1:],
        )
        # Sound only if the nudge actually changes the local unitary by
        # more than a global phase (e.g. not rx(θ) → rx(θ+2π)).
        diff = _compact_unitary(nudged) @ _compact_unitary(op).conj().T
        if abs(
            hilbert_schmidt_fidelity(diff, np.eye(diff.shape[0])) - 1.0
        ) < 1e-6:
            continue
        ops[index] = nudged
        witness = {
            "kind": "phase_nudged",
            "index": index,
            "gate": str(op),
            "delta": delta,
        }
        return (
            _rebuilt(circuit, ops, "phase_nudge"),
            LABEL_NOT_EQUIVALENT,
            witness,
        )
    if circuit.num_qubits < 1:
        raise MutationNotApplicable("no qubits")
    index = rng.randrange(len(ops) + 1)
    qubit = rng.randrange(circuit.num_qubits)
    ops.insert(index, Operation("p", (qubit,), params=(abs(delta),)))
    witness = {
        "kind": "phase_inserted",
        "index": index,
        "qubit": qubit,
        "delta": abs(delta),
    }
    return (
        _rebuilt(circuit, ops, "phase_nudge"),
        LABEL_NOT_EQUIVALENT,
        witness,
    )


#: Name → mutator, grouped by label class.
PRESERVING_MUTATORS: Dict[str, Mutator] = {
    "commute": commute_adjacent,
    "insert_inverse_pair": insert_inverse_pair,
    "swap_relabel": swap_relabel,
    "routed_swaps": routed_swaps,
    "rebase": rebase,
}

BREAKING_MUTATORS: Dict[str, Mutator] = {
    "delete_gate": delete_gate,
    "flip_cnot": flip_cnot,
    "phase_nudge": phase_nudge,
}

MUTATORS: Dict[str, Mutator] = {**PRESERVING_MUTATORS, **BREAKING_MUTATORS}


# ---------------------------------------------------------------------------
# symbolic mutators (parameterized circuits)
# ---------------------------------------------------------------------------
# The concrete mutators above lean on numeric unitaries (commutation
# checks, identity tests), which symbolic parameters cannot provide.
# The symbolic set below restricts itself to *syntactically certain*
# arguments — qubit-disjointness, Z-diagonality, exact half-angle
# splits, and local phase offsets that are provably non-scalar at a
# recorded witness valuation — so every label stays correct by
# construction for the whole parameter space.

#: Gates that are diagonal in the computational basis for any controls
#: and any (symbolic) parameters — all such gates commute pairwise.
_Z_DIAGONAL = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "rzz"})

#: Gates eligible for symbolic angle surgery (single target, 1 param).
_SYM_ROTATIONS = ("rz", "ry", "rx", "p")


def _sym_ops_commute(a: Operation, b: Operation) -> bool:
    """Commutation certain without building unitaries."""
    if not (set(a.qubits) & set(b.qubits)):
        return True
    return a.name in _Z_DIAGONAL and b.name in _Z_DIAGONAL


def sym_commute(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Swap an adjacent pair that provably commutes (no unitary math)."""
    ops = list(circuit)
    candidates = [
        i for i in range(len(ops) - 1) if _sym_ops_commute(ops[i], ops[i + 1])
    ]
    if not candidates:
        raise MutationNotApplicable("no certainly-commuting adjacent pair")
    index = rng.choice(candidates)
    ops[index], ops[index + 1] = ops[index + 1], ops[index]
    witness = {"kind": "commuted_pair", "index": index}
    return _rebuilt(circuit, ops, "sym_commuted"), LABEL_EQUIVALENT, witness


def sym_split_rotation(
    circuit: QuantumCircuit, rng: random.Random
) -> Mutation:
    """Replace one rotation ``r(e)`` by ``r(e/2) · r(e/2)`` (exact)."""
    ops = list(circuit)
    candidates = [
        i
        for i, op in enumerate(ops)
        if op.name in _SYM_ROTATIONS and not op.controls
    ]
    if not candidates:
        raise MutationNotApplicable("no splittable rotation")
    index = rng.choice(candidates)
    op = ops[index]
    half = Operation(op.name, op.targets, op.controls, (op.params[0] / 2,))
    ops[index:index + 1] = [half, half]
    witness = {"kind": "split_rotation", "index": index, "gate": str(op)}
    return _rebuilt(circuit, ops, "sym_split"), LABEL_EQUIVALENT, witness


def _all_zero_valuation(circuit: QuantumCircuit) -> Dict[str, float]:
    from repro.circuit.symbolic import circuit_parameters

    return {name: 0.0 for name in circuit_parameters(circuit)}


def sym_coefficient_nudge(
    circuit: QuantumCircuit, rng: random.Random
) -> Mutation:
    """Add ``Δc · v`` to one symbolic rotation angle.

    With ``g' = g · r(Δc·v)`` on the same rotation axis, the mutant
    equals ``A·g'·B`` and is equivalent to ``A·g·B`` iff ``r(Δc·v)`` is
    scalar.  At the recorded witness valuation (``v = π/Δc``, all other
    parameters 0) the offset is exactly π, and ``rz/rx/ry/p`` of π are
    never scalar — a sound non-equivalence with an explicit valuation.
    Note the circuits *agree* at the all-zeros valuation, so this plants
    exactly the error class only parameterized checking can discuss.
    """
    from repro.circuit.symbolic import ParamExpr, symbol

    ops = list(circuit)
    candidates = [
        i
        for i, op in enumerate(ops)
        if op.name in _SYM_ROTATIONS
        and not op.controls
        and isinstance(op.params[0], ParamExpr)
    ]
    if not candidates:
        raise MutationNotApplicable("no symbolic rotation to nudge")
    index = rng.choice(candidates)
    op = ops[index]
    expr = op.params[0]
    variable = rng.choice(expr.variables)
    delta_coeff = rng.choice(
        (Fraction(1), Fraction(-1), Fraction(1, 2), Fraction(-1, 2),
         Fraction(3, 2), Fraction(1, 4))
    )
    nudged = expr + delta_coeff * symbol(variable)
    ops[index] = Operation(op.name, op.targets, op.controls, (nudged,))
    valuation = _all_zero_valuation(circuit)
    valuation[variable] = math.pi / float(delta_coeff)
    witness = {
        "kind": "coefficient_nudged",
        "index": index,
        "gate": str(op),
        "variable": variable,
        "delta_coefficient": str(delta_coeff),
        "valuation": valuation,
    }
    return (
        _rebuilt(circuit, ops, "sym_coeff_nudge"),
        LABEL_NOT_EQUIVALENT,
        witness,
    )


def sym_const_nudge(circuit: QuantumCircuit, rng: random.Random) -> Mutation:
    """Add a small constant offset to one rotation angle.

    The local change is ``r(δ)`` with ``δ ∈ ±[0.05, 0.45]`` rad — never
    scalar, and independent of the parameter valuation, so *every*
    valuation witnesses the non-equivalence (all-zeros is recorded).
    """
    delta = rng.uniform(0.05, 0.45) * rng.choice((-1.0, 1.0))
    ops = list(circuit)
    candidates = [
        i
        for i, op in enumerate(ops)
        if op.name in _SYM_ROTATIONS and not op.controls
    ]
    if not candidates:
        raise MutationNotApplicable("no rotation to offset")
    index = rng.choice(candidates)
    op = ops[index]
    ops[index] = Operation(
        op.name, op.targets, op.controls, (op.params[0] + delta,)
    )
    witness = {
        "kind": "const_nudged",
        "index": index,
        "gate": str(op),
        "delta": delta,
        "valuation": _all_zero_valuation(circuit),
    }
    return (
        _rebuilt(circuit, ops, "sym_const_nudge"),
        LABEL_NOT_EQUIVALENT,
        witness,
    )


SYMBOLIC_PRESERVING_MUTATORS: Dict[str, Mutator] = {
    "sym_commute": sym_commute,
    "sym_insert_inverse_pair": insert_inverse_pair,
    "sym_swap_relabel": swap_relabel,
    "sym_split_rotation": sym_split_rotation,
}

SYMBOLIC_BREAKING_MUTATORS: Dict[str, Mutator] = {
    "sym_coefficient_nudge": sym_coefficient_nudge,
    "sym_const_nudge": sym_const_nudge,
}

SYMBOLIC_MUTATORS: Dict[str, Mutator] = {
    **SYMBOLIC_PRESERVING_MUTATORS,
    **SYMBOLIC_BREAKING_MUTATORS,
}
