"""Persistence of minimized repros into a ``corpus/`` seed directory.

Every disagreement the fuzzer finds (after shrinking) is written as a
self-contained repro directory::

    corpus/
      journal.jsonl                      # one JSONL entry per repro
      clifford_t-s17-delete_gate/
        circuit1.qasm                    # the pair, ready for
        circuit2.qasm                    #   `python -m repro verify`
        meta.json                        # labels, verdicts, shrink info

The journal reuses the fault-isolation layer's
:class:`repro.harness.Journal` (append-only JSONL, fsynced per entry,
torn-line tolerant), so a killed campaign never loses already-persisted
repros and triage tooling can replay the journal without scanning
directories.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.circuit import circuit_to_qasm
from repro.fuzz.generator import FuzzInstance, LabeledPair
from repro.fuzz.oracle import OracleReport

#: Journal header metadata — constant so later campaigns can append.
_JOURNAL_METADATA = {"kind": "fuzz-corpus", "format": 1}


def repro_name(instance: FuzzInstance) -> str:
    """Stable directory name of one repro."""
    return f"{instance.family}-s{instance.seed}-{instance.recipe}"


def open_corpus_journal(corpus_dir):
    """Open (creating if needed) the corpus journal of one campaign.

    Callers own the returned :class:`repro.harness.Journal` and must
    close it — :func:`repro.fuzz.runner.run_fuzz` does so in a
    ``finally`` block so an interrupted campaign (Ctrl-C mid-shrink)
    cannot leak the file handle.
    """
    from repro.harness import Journal

    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    journal_path = corpus / "journal.jsonl"
    return Journal(
        journal_path,
        metadata=dict(_JOURNAL_METADATA),
        resume=journal_path.exists(),
    )


def persist_repro(
    corpus_dir,
    instance: FuzzInstance,
    pair: LabeledPair,
    report: OracleReport,
    shrink_info: Optional[Dict[str, object]] = None,
    journal=None,
) -> Path:
    """Write one minimized repro; returns its directory.

    The pair's circuits land as QASM (with a layout sidecar whenever the
    circuit carries non-trivial metadata, mirroring ``repro compile``),
    the labels/verdicts as ``meta.json``, and a summary line is appended
    to ``corpus/journal.jsonl``.  With ``journal`` the caller supplies
    an already-open campaign journal (and keeps ownership of it);
    without, one is opened and closed around the single append.
    """

    corpus = Path(corpus_dir)
    target = corpus / repro_name(instance)
    target.mkdir(parents=True, exist_ok=True)
    for index, circuit in enumerate((pair.circuit1, pair.circuit2), start=1):
        path = target / f"circuit{index}.qasm"
        path.write_text(circuit_to_qasm(circuit))
        if circuit.initial_layout or circuit.output_permutation:
            sidecar = Path(str(path) + ".layout.json")
            sidecar.write_text(
                json.dumps(
                    {
                        "initial_layout": circuit.initial_layout,
                        "output_permutation": circuit.output_permutation,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
    meta: Dict[str, object] = {
        "instance": instance.describe(),
        "label": pair.label,
        "witness": pair.witness,
        "oracle": report.to_dict(),
    }
    if shrink_info:
        meta["shrink"] = dict(shrink_info)
    (target / "meta.json").write_text(json.dumps(meta, indent=2, sort_keys=True))

    entry = {
        "family": instance.family,
        "seed": instance.seed,
        "recipe": instance.recipe,
        "label": pair.label,
        "gates": [len(pair.circuit1), len(pair.circuit2)],
        "qubits": pair.num_qubits,
        "disagreements": report.disagreements,
    }
    if journal is not None:
        journal.record(repro_name(instance), entry)
    else:
        with open_corpus_journal(corpus) as owned:
            owned.record(repro_name(instance), entry)
    return target
