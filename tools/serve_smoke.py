#!/usr/bin/env python
"""End-to-end smoke test of the supervised equivalence-checking service.

Starts a real :class:`repro.service.server.ServiceServer` (worker pool,
verdict cache, ``AF_UNIX`` socket) in a background thread, submits the
same 20-pair batch twice through a :class:`repro.service.ServiceClient`,
and asserts:

* every verdict in both batches is equivalent (up to global phase);
* the second batch is served (almost) entirely from the verdict cache —
  at least 19 of 20 hits, i.e. the cache key is stable across submits;
* cached and fresh verdicts agree pairwise on the equivalence field;
* the draining shutdown leaves no worker children behind (pool audit
  reports zero leaked processes) and removes the socket.

Exit code 0 on success, 1 with a diagnostic on any violated invariant.
Run as ``make serve-smoke`` or ``python tools/serve_smoke.py``; CI wires
it into the smoke job.
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ec.configuration import Configuration  # noqa: E402
from repro.fuzz.generator import generate_instance  # noqa: E402
from repro.service import (  # noqa: E402
    PoolConfig,
    ServiceClient,
    ServiceServer,
    VerdictCache,
    WorkerPool,
)

PAIRS = 20


def _fail(message: str) -> "NoReturn":  # type: ignore[name-defined]  # noqa: F821
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    pairs = []
    seed = 7_000
    while len(pairs) < PAIRS:
        # Equivalent-by-construction pairs only (the generator also emits
        # planted-bug recipes); seeds are fixed so the batch (and its
        # cache keys) never varies between runs.
        _instance, pair = generate_instance(seed, "clifford_t")
        seed += 1
        if pair.label == "equivalent":
            pairs.append((pair.circuit1, pair.circuit2))

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = str(Path(tmp) / "service.sock")
        pool = WorkerPool(
            PoolConfig(workers=2, queue_depth=64),
            cache=VerdictCache(Path(tmp) / "cache.jsonl"),
        )
        server = ServiceServer(pool, socket_path).start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            configuration = Configuration(timeout=10.0, seed=11)
            with ServiceClient(socket_path) as client:
                if not client.ping():
                    _fail("server did not answer ping")
                first = client.submit_batch(pairs, configuration)
                second = client.submit_batch(pairs, configuration)
                stats = client.stats()
        finally:
            try:
                with ServiceClient(socket_path) as closer:
                    closer.shutdown_server()
            except OSError:
                server.request_stop()
            thread.join(timeout=60.0)

        if thread.is_alive():
            _fail("serve loop did not drain and exit within 60s")
        for label, batch in (("first", first), ("second", second)):
            if len(batch) != PAIRS:
                _fail(f"{label} batch returned {len(batch)}/{PAIRS} verdicts")
            wrong = [
                payload["equivalence"]
                for payload in batch
                if payload["equivalence"]
                not in ("equivalent", "equivalent_up_to_global_phase")
            ]
            if wrong:
                _fail(f"{label} batch had non-equivalent verdicts: {wrong}")
        for index, (fresh, cached) in enumerate(zip(first, second)):
            if fresh["equivalence"] != cached["equivalence"]:
                _fail(f"pair {index}: cached verdict diverged from fresh one")
        counters = stats["counters"]["counters"]
        hits = counters.get("cache.hit", 0)
        if hits < PAIRS - 1:
            _fail(
                f"second batch expected ~{PAIRS} cache hits, got {hits} "
                f"(counters: {counters})"
            )
        audit = pool.audit()
        if audit["leaked"]:
            _fail(f"pool leaked worker processes: {audit}")
        if Path(socket_path).exists():
            _fail("socket file survived the draining shutdown")

    print(
        f"serve-smoke: OK — {PAIRS} pairs twice, {hits} cache hits, "
        f"{audit['spawned']} workers spawned, 0 leaked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
