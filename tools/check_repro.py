#!/usr/bin/env python3
"""Project-invariant checks — thin wrapper over :mod:`repro.lint`.

The actual engine (CFG construction, dataflow solver, rules,
suppressions, baseline) lives in ``src/repro/lint`` where it is
imported, typed, and unit-tested like any other package.  This script
only bootstraps ``sys.path`` and preserves the historical entry points:

``run_checks(root) -> List[Finding]``
    Post-suppression findings (including ``stale-allow``), no baseline.
``main(argv) -> int``
    The CLI: exit 0 on a clean tree, 1 on findings.  See
    ``python tools/check_repro.py --help`` for ``--json``, ``--baseline``
    and friends.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(_REPO_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.lint import Finding  # noqa: E402,F401  (re-exported for callers)
from repro.lint import run_checks as _run_checks  # noqa: E402
from repro.lint.cli import main as _main  # noqa: E402


def run_checks(root: Path) -> List[Finding]:
    """Historic API: all post-suppression findings under ``root``."""
    return _run_checks(root)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    has_root = any(a == "--root" or a.startswith("--root=") for a in args)
    if not has_root:
        args = ["--root", str(_REPO_ROOT)] + args
    return _main(args)


if __name__ == "__main__":
    raise SystemExit(main())
