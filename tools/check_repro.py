#!/usr/bin/env python
"""AST-based lint enforcing repro project invariants.

Rules (suppress a finding with ``# repro: allow(rule-id): reason`` on the
flagged line or the line directly above it — the reason is mandatory):

``deadline-loop``
    Every ``for``/``while`` loop in the checker hot paths
    (``src/repro/ec/*_checker.py``, ``src/repro/zx/simplify.py``) must
    consult the cooperative deadline — reference ``deadline`` somewhere
    in its body (typically ``_check_deadline(deadline)`` or a callee
    that takes it).  Loops inside functions that have no ``deadline``
    in scope are exempt (helpers that cannot time out by design), as
    are trivially bounded loops over an operation's own qubits.

``seeded-rng``
    No unseeded randomness outside ``fuzz/generator.py``: flags
    ``random.Random()`` with no arguments, module-level ``random.*``
    draws, and ``np.random`` usage.  Reproducibility of every check and
    every campaign is a project invariant.

``counter-namespace``
    ``counters.count("ns.name")`` / ``perf.count(...)`` calls must use a
    name whose first dotted component is registered in
    ``repro.perf.counters.COUNTER_NAMESPACES`` — dashboards never meet
    an unreviewed counter family.

``no-wallclock``
    ``time.time()`` is banned in the pure algorithmic layers
    (``circuit``, ``dd``, ``zx``, ``stab``, ``analysis``): wall-clock
    reads belong to the harness/manager layer; pure code takes deadlines
    as parameters and uses ``perf_counter``/``monotonic`` only via them.

``no-fork``
    Process creation — ``os.fork``/``os.forkpty``, ``subprocess.*``
    spawns, ``multiprocessing`` ``Process``/``get_context``/``Pool`` —
    is banned outside ``repro/harness/`` and the supervised worker pool
    (``repro/service/pool.py``): every child the project creates must go
    through the sandbox/racer or the pool supervisor so it gets resource
    limits, hard kill budgets and zombie-free reaping.  (Read-only
    ``multiprocessing`` queries such as ``active_children`` are fine.)

``no-object-dd``
    The array-native DD modules (``dd/array_*.py``) must never
    construct the legacy node/edge objects (``VNode``/``MNode``/
    ``VEdge``/``MEdge``): handles and packed integer edges are the
    whole point, and one stray object allocation in a kernel hot loop
    silently gives the speedup back.  Legacy-interop shims must carry
    an explicit suppression.

Exit code 0 when the tree is clean, 1 when any unsuppressed finding
remains.  Run as ``python tools/check_repro.py [--root DIR]``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)"
)

#: Algorithmic packages where wall-clock reads are banned.
_PURE_PACKAGES = ("circuit", "dd", "zx", "stab", "analysis")

#: Receiver names treated as PerfCounters instances for rule 3.
_COUNTER_RECEIVERS = {"counters", "perf", "perf_counters"}


class Finding:
    """One rule violation at a source location."""

    def __init__(self, path: Path, line: int, rule: str, message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allows(source_lines: Sequence[str], line: int) -> Dict[int, str]:
    """Map of rule suppressions applicable to ``line`` (1-indexed)."""
    rules: Dict[int, str] = {}
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(source_lines):
            match = _ALLOW_RE.search(source_lines[candidate - 1])
            if match:
                rules[candidate] = match.group(1)
    return rules


def _is_suppressed(
    source_lines: Sequence[str], line: int, rule: str
) -> bool:
    return rule in _allows(source_lines, line).values()


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Rule 1: deadline-loop
# ----------------------------------------------------------------------
def _function_scopes(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Set[str]]]:
    """Yield (function node, parameter names) for every def in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = {
                a.arg
                for a in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            }
            yield node, names


def check_deadline_loops(
    path: Path, tree: ast.AST, source_lines: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for function, params in _function_scopes(tree):
        if "deadline" not in params:
            continue
        # Loops belonging to *nested* functions are judged in their own
        # scope, so collect the direct loop statements of this function.
        nested: Set[int] = set()
        for child in ast.walk(function):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not function
            ):
                for grand in ast.walk(child):
                    nested.add(id(grand))
        for node in ast.walk(function):
            if id(node) in nested or not isinstance(
                node, (ast.For, ast.While)
            ):
                continue
            if "deadline" in _names_in(node):
                continue
            if _is_suppressed(source_lines, node.lineno, "deadline-loop"):
                continue
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "deadline-loop",
                    "loop in a deadline-scoped function never consults "
                    "the cooperative deadline",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Rule 2: seeded-rng
# ----------------------------------------------------------------------
#: Module-level ``random.*`` draws that consume the global (unseeded) RNG.
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "getrandbits", "betavariate",
}


def check_seeded_rng(
    path: Path, tree: ast.AST, source_lines: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        message = None
        if dotted == "random.Random" and not node.args and not node.keywords:
            message = "random.Random() without a seed"
        elif (
            dotted.startswith("np.random.") or dotted.startswith("numpy.random.")
        ):
            message = f"{dotted}: use a seeded np.random.Generator instead"
        elif (
            dotted.startswith("random.")
            and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS
        ):
            message = f"{dotted}: draws from the global unseeded RNG"
        if message is None:
            continue
        if _is_suppressed(source_lines, node.lineno, "seeded-rng"):
            continue
        findings.append(Finding(path, node.lineno, "seeded-rng", message))
    return findings


# ----------------------------------------------------------------------
# Rule 3: counter-namespace
# ----------------------------------------------------------------------
def load_counter_namespaces(root: Path) -> Tuple[str, ...]:
    """Parse ``COUNTER_NAMESPACES`` out of repro/perf/counters.py statically."""
    counters_path = root / "src" / "repro" / "perf" / "counters.py"
    tree = ast.parse(counters_path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "COUNTER_NAMESPACES" in targets:
                value = ast.literal_eval(node.value)
                return tuple(str(item) for item in value)
    raise SystemExit(
        f"COUNTER_NAMESPACES not found in {counters_path}"
    )


def check_counter_namespaces(
    path: Path,
    tree: ast.AST,
    source_lines: Sequence[str],
    namespaces: Tuple[str, ...],
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            continue
        receiver = func.value
        receiver_name = None
        if isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        if receiver_name not in _COUNTER_RECEIVERS:
            continue
        if not node.args or not isinstance(node.args[0], ast.Constant):
            continue
        name = node.args[0].value
        if not isinstance(name, str):
            continue
        namespace = name.split(".", 1)[0]
        if namespace in namespaces:
            continue
        if _is_suppressed(source_lines, node.lineno, "counter-namespace"):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "counter-namespace",
                f"counter {name!r} uses unregistered namespace "
                f"{namespace!r} (register it in "
                "repro.perf.counters.COUNTER_NAMESPACES)",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Rule 4: no-wallclock
# ----------------------------------------------------------------------
def check_no_wallclock(
    path: Path, tree: ast.AST, source_lines: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _dotted(node.func) != "time.time":
            continue
        if _is_suppressed(source_lines, node.lineno, "no-wallclock"):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "no-wallclock",
                "time.time() in a pure algorithmic module; take a "
                "deadline parameter instead",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Rule 5: no-fork
# ----------------------------------------------------------------------
#: Call chains that create a child process.  Matched against the dotted
#: rendering of the call target, so aliased imports (``import os as o``)
#: slip through — acceptable for a project-invariant lint; the idiom in
#: this tree is plain ``import os`` / ``import multiprocessing``.
_FORK_CALLS = {
    "os.fork": "os.fork()",
    "os.forkpty": "os.forkpty()",
    "os.posix_spawn": "os.posix_spawn()",
    "os.system": "os.system()",
    "subprocess.Popen": "subprocess.Popen()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "multiprocessing.Process": "multiprocessing.Process()",
    "multiprocessing.Pool": "multiprocessing.Pool()",
    "multiprocessing.get_context": "multiprocessing.get_context()",
}

#: Bare-name process constructors (``from multiprocessing import Process``).
_FORK_NAMES = {"Process", "Pool", "get_context"}


def check_no_fork(
    path: Path, tree: ast.AST, source_lines: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        message = None
        if dotted in _FORK_CALLS:
            message = f"{_FORK_CALLS[dotted]} outside repro.harness"
        elif (
            dotted is not None
            and dotted.split(".")[-1] in _FORK_NAMES
            and len(dotted.split(".")) <= 2
            and (
                dotted in _FORK_NAMES
                or dotted.split(".")[0] in ("mp", "multiprocessing", "ctx")
            )
        ):
            message = f"{dotted}() spawns a process outside repro.harness"
        if message is None:
            continue
        if _is_suppressed(source_lines, node.lineno, "no-fork"):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "no-fork",
                message
                + " (route child processes through the sandbox/racer "
                "in repro.harness)",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Rule 6: no-object-dd
# ----------------------------------------------------------------------
#: Legacy object-engine constructors banned in the array DD modules.
_OBJECT_DD_NAMES = {"VNode", "MNode", "VEdge", "MEdge"}


def check_no_object_dd(
    path: Path, tree: ast.AST, source_lines: Sequence[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None or dotted.split(".")[-1] not in _OBJECT_DD_NAMES:
            continue
        if _is_suppressed(source_lines, node.lineno, "no-object-dd"):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "no-object-dd",
                f"{dotted}() allocates a legacy DD object in an "
                "array-native module; use handles and packed integer "
                "edges",
            )
        )
    return findings


# ----------------------------------------------------------------------
def _iter_python_files(root: Path) -> Iterator[Path]:
    yield from sorted((root / "src" / "repro").rglob("*.py"))


def run_checks(root: Path) -> List[Finding]:
    namespaces = load_counter_namespaces(root)
    findings: List[Finding] = []
    for path in _iter_python_files(root):
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(
                Finding(path, exc.lineno or 0, "syntax", str(exc))
            )
            continue
        lines = source.splitlines()
        relative = path.relative_to(root / "src" / "repro")
        parts = relative.parts
        is_checker_hot_path = (
            len(parts) == 2
            and parts[0] == "ec"
            and parts[1].endswith("_checker.py")
        ) or relative.as_posix() == "zx/simplify.py"
        if is_checker_hot_path:
            findings.extend(check_deadline_loops(path, tree, lines))
        if relative.as_posix() != "fuzz/generator.py":
            findings.extend(check_seeded_rng(path, tree, lines))
        findings.extend(
            check_counter_namespaces(path, tree, lines, namespaces)
        )
        if parts[0] in _PURE_PACKAGES:
            findings.extend(check_no_wallclock(path, tree, lines))
        # The supervised worker pool is the one non-harness module that
        # legitimately owns child processes: it reuses the sandbox's
        # limits and start-method and adds its own reaping/audit layer.
        if parts[0] != "harness" and relative.as_posix() != "service/pool.py":
            findings.extend(check_no_fork(path, tree, lines))
        if parts[0] == "dd" and parts[-1].startswith("array_"):
            findings.extend(check_no_object_dd(path, tree, lines))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (containing src/repro)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    findings = run_checks(root)
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"check_repro: {len(findings)} finding(s); fix or suppress "
            "with '# repro: allow(rule): reason'",
            file=sys.stderr,
        )
        return 1
    print("check_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
