#!/usr/bin/env python
"""Enforce the checked-in line-coverage floors.

Reads a ``coverage.json`` report (pytest-cov's ``--cov-report=json``)
and compares per-package aggregate line coverage against the floors in
``tools/coverage_floor.json``::

    {"repro/ec": 70.0, "repro/circuit": 70.0}

Each floor key is a path fragment under ``src/``; every measured file
whose path contains ``src/<key>/`` (or starts with ``<key>/``) counts
toward that package's aggregate, computed as summed covered lines over
summed statements — so one well-covered big module cannot hide an
uncovered small one behind a per-file average.

The floors are a ratchet, not a target: raise them as coverage grows,
never lower them to make a regression pass.

Exit codes: 0 = every floor met, 1 = a floor violated or the report is
missing/unreadable.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FLOORS = REPO / "tools" / "coverage_floor.json"
DEFAULT_REPORT = REPO / "coverage.json"


def _matches(path: str, package: str) -> bool:
    normalized = path.replace("\\", "/")
    return f"src/{package}/" in normalized or normalized.startswith(
        f"{package}/"
    )


def main(argv: list) -> int:
    report_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_REPORT
    try:
        report = json.loads(report_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"coverage: cannot read {report_path}: {exc}", file=sys.stderr)
        return 1
    floors = json.loads(FLOORS.read_text())
    files = report.get("files", {})
    failed = False
    for package, floor in sorted(floors.items()):
        statements = 0
        covered = 0
        measured = 0
        for path, data in files.items():
            if not _matches(path, package):
                continue
            summary = data.get("summary", {})
            statements += int(summary.get("num_statements", 0))
            covered += int(summary.get("covered_lines", 0))
            measured += 1
        if not measured or not statements:
            print(
                f"coverage: no measured files for {package!r} — was the "
                f"suite run with --cov={package.replace('/', '.')}?",
                file=sys.stderr,
            )
            failed = True
            continue
        percent = 100.0 * covered / statements
        status = "ok" if percent >= floor else "FAIL"
        print(
            f"coverage: {package:16s} {percent:6.2f}% "
            f"(floor {floor:.2f}%, {covered}/{statements} lines over "
            f"{measured} files) {status}"
        )
        if percent < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
