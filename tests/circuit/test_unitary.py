"""Unit tests for the dense reference semantics (`repro.circuit.unitary`)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    QuantumCircuit,
    circuit_unitary,
    hilbert_schmidt_fidelity,
    operation_unitary,
    statevector,
    unitaries_equivalent,
)
from repro.circuit.gate import Operation, base_matrix
from repro.circuit.unitary import permutation_matrix
from tests.conftest import random_circuit


class TestOperationUnitary:
    def test_single_qubit_on_lsb(self):
        x_full = operation_unitary(Operation("x", (0,)), 2)
        np.testing.assert_allclose(
            x_full, np.kron(np.eye(2), base_matrix("x")), atol=1e-12
        )

    def test_single_qubit_on_msb(self):
        x_full = operation_unitary(Operation("x", (1,)), 2)
        np.testing.assert_allclose(
            x_full, np.kron(base_matrix("x"), np.eye(2)), atol=1e-12
        )

    def test_cx_control_lsb(self):
        # control qubit 0 (LSB), target qubit 1: |01> -> |11>
        cx = operation_unitary(Operation("x", (1,), (0,)), 2)
        expected = np.zeros((4, 4))
        expected[0, 0] = expected[2, 2] = 1  # control 0: unchanged
        expected[3, 1] = expected[1, 3] = 1  # control 1: flip target
        np.testing.assert_allclose(cx, expected, atol=1e-12)

    def test_toffoli_truth_table(self):
        ccx = operation_unitary(Operation("x", (2,), (0, 1)), 3)
        for basis in range(8):
            image = basis ^ (4 if (basis & 3) == 3 else 0)
            assert ccx[image, basis] == pytest.approx(1.0)

    def test_swap_exchanges(self):
        swap = operation_unitary(Operation("swap", (0, 1)), 2)
        assert swap[1, 2] == pytest.approx(1.0)
        assert swap[2, 1] == pytest.approx(1.0)

    def test_controlled_phase_symmetry(self):
        a = operation_unitary(Operation("p", (1,), (0,), (0.7,)), 2)
        b = operation_unitary(Operation("p", (0,), (1,), (0.7,)), 2)
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestCircuitUnitary:
    def test_gate_order_left_to_right(self):
        circuit = QuantumCircuit(1).x(0).h(0)
        expected = base_matrix("h") @ base_matrix("x")
        np.testing.assert_allclose(circuit_unitary(circuit), expected, atol=1e-12)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_are_unitary(self, seed):
        circuit = random_circuit(3, 20, seed=seed)
        unitary = circuit_unitary(circuit)
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(8), atol=1e-9
        )

    def test_statevector_matches_unitary_column(self):
        circuit = random_circuit(3, 15, seed=4)
        np.testing.assert_allclose(
            statevector(circuit), circuit_unitary(circuit)[:, 0], atol=1e-9
        )

    def test_statevector_custom_initial(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        initial = np.zeros(4, dtype=complex)
        initial[1] = 1.0  # |01>: qubit0 = 1
        final = statevector(circuit, initial)
        assert abs(final[3]) == pytest.approx(1.0)

    def test_statevector_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            statevector(QuantumCircuit(2), np.zeros(3))


class TestPermutationMatrix:
    def test_identity(self):
        np.testing.assert_allclose(
            permutation_matrix({}, 2), np.eye(4), atol=1e-12
        )

    def test_swap_wires(self):
        p = permutation_matrix({0: 1, 1: 0}, 2)
        swap = operation_unitary(Operation("swap", (0, 1)), 2)
        np.testing.assert_allclose(p, swap, atol=1e-12)

    def test_three_cycle(self):
        p = permutation_matrix({0: 1, 1: 2, 2: 0}, 3)
        # |001> (qubit0=1) -> qubit 1 set -> |010>
        assert p[2, 1] == pytest.approx(1.0)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            permutation_matrix({0: 1, 1: 1}, 2)


class TestEquivalencePredicates:
    def test_global_phase_ignored(self):
        u = circuit_unitary(random_circuit(2, 10, seed=2))
        assert unitaries_equivalent(u, np.exp(0.321j) * u)

    def test_different_unitaries_rejected(self):
        x = operation_unitary(Operation("x", (0,)), 1)
        z = operation_unitary(Operation("z", (0,)), 1)
        assert not unitaries_equivalent(x, z)

    def test_fidelity_range(self):
        u = circuit_unitary(random_circuit(2, 10, seed=3))
        assert hilbert_schmidt_fidelity(u, u) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hilbert_schmidt_fidelity(np.eye(2), np.eye(4))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0, 2 * math.pi))
    def test_phase_invariance_property(self, seed, phase):
        u = circuit_unitary(random_circuit(2, 8, seed=seed))
        assert unitaries_equivalent(u, np.exp(1j * phase) * u)
