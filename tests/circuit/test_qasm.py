"""Unit tests for the OpenQASM 2.0 reader/writer (`repro.circuit.qasm`)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    QasmError,
    QuantumCircuit,
    circuit_from_qasm,
    circuit_to_qasm,
    circuit_unitary,
    unitaries_equivalent,
)
from tests.conftest import random_circuit

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestParserBasics:
    def test_empty_program(self):
        circuit = circuit_from_qasm(HEADER + "qreg q[3];")
        assert circuit.num_qubits == 3
        assert len(circuit) == 0

    def test_simple_gates(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        assert circuit[0].name == "h"
        assert circuit[1].name == "x"
        assert circuit[1].controls == (0,)

    def test_comments_ignored(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1]; // register\n// a comment\nx q[0]; // flip\n"
        )
        assert len(circuit) == 1

    def test_measure_barrier_reset_skipped(self):
        text = (
            HEADER
            + "qreg q[2]; creg c[2];\nh q[0];\nbarrier q;\n"
            + "measure q[0] -> c[0];\nreset q[1];\n"
        )
        circuit = circuit_from_qasm(text)
        assert len(circuit) == 1

    def test_multiple_registers_flattened(self):
        text = HEADER + "qreg a[2]; qreg b[2];\ncx a[1],b[0];\n"
        circuit = circuit_from_qasm(text)
        assert circuit.num_qubits == 4
        assert circuit[0].controls == (1,)
        assert circuit[0].targets == (2,)

    def test_register_broadcast(self):
        circuit = circuit_from_qasm(HEADER + "qreg q[3];\nh q;\n")
        assert len(circuit) == 3
        assert {op.targets[0] for op in circuit} == {0, 1, 2}

    def test_broadcast_two_registers(self):
        text = HEADER + "qreg a[2]; qreg b[2];\ncx a,b;\n"
        circuit = circuit_from_qasm(text)
        assert len(circuit) == 2

    def test_parameter_expressions(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1];\nrz(pi/2) q[0];\nrz(-3*pi/4) q[0];\n"
            "rz(2*pi/8+0.25) q[0];\nrz(cos(0)) q[0];\n"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)
        assert circuit[1].params[0] == pytest.approx(-3 * math.pi / 4)
        assert circuit[2].params[0] == pytest.approx(math.pi / 4 + 0.25)
        assert circuit[3].params[0] == pytest.approx(1.0)

    def test_u_gates(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1];\nu1(0.5) q[0];\nu2(0.1,0.2) q[0];\n"
            "u3(0.1,0.2,0.3) q[0];\nu(0.1,0.2,0.3) q[0];\n"
        )
        assert [op.name for op in circuit] == ["p", "u2", "u3", "u3"]

    def test_multi_controlled_builtins(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[5];\nccx q[0],q[1],q[2];\nc3x q[0],q[1],q[2],q[3];\n"
            "c4x q[0],q[1],q[2],q[3],q[4];\nmcx_3 q[1],q[2],q[3],q[0];\n"
        )
        assert [len(op.controls) for op in circuit] == [2, 3, 4, 3]


class TestParserErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nfrob q[0];\n")

    def test_unknown_register(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nx r[0];\n")

    def test_index_out_of_range(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nx q[4];\n")

    def test_duplicate_register(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1]; qreg q[2];\n")

    def test_wrong_qubit_count(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[2];\ncx q[0];\n")

    def test_wrong_param_count(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nrz q[0];\n")

    def test_garbage_token(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nx q[0]; @\n")

    def test_mismatched_broadcast(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg a[2]; qreg b[3];\ncx a,b;\n")


class TestGateMacros:
    def test_simple_macro_expansion(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate bell a,b { h a; cx a,b; }\n"
            + "bell q[0],q[1];\n"
        )
        circuit = circuit_from_qasm(text)
        assert [op.name for op in circuit] == ["h", "x"]

    def test_parameterized_macro(self):
        text = (
            HEADER
            + "qreg q[1];\n"
            + "gate wiggle(t) a { rz(t/2) a; rx(-t) a; }\n"
            + "wiggle(0.8) q[0];\n"
        )
        circuit = circuit_from_qasm(text)
        assert circuit[0].params[0] == pytest.approx(0.4)
        assert circuit[1].params[0] == pytest.approx(-0.8)

    def test_nested_macros(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate inner a { h a; }\n"
            + "gate outer a,b { inner a; cx a,b; inner b; }\n"
            + "outer q[0],q[1];\n"
        )
        circuit = circuit_from_qasm(text)
        assert [op.name for op in circuit] == ["h", "x", "h"]

    def test_macro_semantics_match_inline(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate entangle(t) a,b { h a; cx a,b; rz(t) b; }\n"
            + "entangle(1.1) q[0],q[1];\n"
        )
        inline = QuantumCircuit(2).h(0).cx(0, 1).rz(1.1, 1)
        assert unitaries_equivalent(
            circuit_unitary(circuit_from_qasm(text)), circuit_unitary(inline)
        )


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_roundtrip(self, seed):
        circuit = random_circuit(4, 30, seed=seed)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert unitaries_equivalent(
            circuit_unitary(parsed), circuit_unitary(circuit)
        )

    def test_mcx_roundtrip(self):
        circuit = QuantumCircuit(7).mcx([0, 1, 2, 3, 4, 5], 6)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed[0].controls == (0, 1, 2, 3, 4, 5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_roundtrip_property(self, seed):
        circuit = random_circuit(3, 12, seed=seed)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed.operations == circuit.operations


class TestExpressionEdgeCases:
    def test_power_operator(self):
        circuit = circuit_from_qasm(HEADER + "qreg q[1];\nrz(2^3) q[0];\n")
        assert circuit[0].params[0] == pytest.approx(8.0)

    def test_nested_parentheses(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1];\nrz(((pi))/((2))) q[0];\n"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)

    def test_unary_plus_and_minus(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1];\nrz(+0.5) q[0];\nrz(--0.5) q[0];\n"
        )
        assert circuit[0].params[0] == pytest.approx(0.5)
        assert circuit[1].params[0] == pytest.approx(0.5)

    def test_scientific_notation(self):
        circuit = circuit_from_qasm(HEADER + "qreg q[1];\nrz(1e-2) q[0];\n")
        assert circuit[0].params[0] == pytest.approx(0.01)

    def test_function_composition(self):
        circuit = circuit_from_qasm(
            HEADER + "qreg q[1];\nrz(sqrt(cos(0)+3)) q[0];\n"
        )
        assert circuit[0].params[0] == pytest.approx(2.0)

    def test_unknown_identifier_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm(HEADER + "qreg q[1];\nrz(tau) q[0];\n")

    def test_u0_is_identity(self):
        circuit = circuit_from_qasm(HEADER + "qreg q[1];\nu0(3) q[0];\n")
        assert circuit[0].name == "id"
        assert circuit[0].params == ()


class TestMacroEdgeCases:
    def test_empty_gate_body(self):
        text = HEADER + "qreg q[1];\ngate nop a { }\nnop q[0];\n"
        assert len(circuit_from_qasm(text)) == 0

    def test_barrier_inside_gate_body_skipped(self):
        text = (
            HEADER
            + "qreg q[2];\n"
            + "gate g a,b { h a; barrier a,b; cx a,b; }\n"
            + "g q[0],q[1];\n"
        )
        assert [op.name for op in circuit_from_qasm(text)] == ["h", "x"]

    def test_macro_wrong_arity_rejected(self):
        text = HEADER + "qreg q[2];\ngate g a { h a; }\ng q[0],q[1];\n"
        with pytest.raises(QasmError):
            circuit_from_qasm(text)

    def test_macro_param_expression_uses_binding(self):
        text = (
            HEADER
            + "qreg q[1];\n"
            + "gate g(x,y) a { rz(x*y+pi) a; }\n"
            + "g(2,3) q[0];\n"
        )
        circuit = circuit_from_qasm(text)
        assert circuit[0].params[0] == pytest.approx(6 + math.pi)

    def test_cnot_alias(self):
        # "CX" is the OpenQASM built-in spelling
        circuit = circuit_from_qasm(HEADER + "qreg q[2];\nCX q[0],q[1];\n")
        assert circuit[0].name == "x"
        assert circuit[0].controls == (0,)
