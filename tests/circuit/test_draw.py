"""Tests for the ASCII circuit drawer (`repro.circuit.draw`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.circuit import ghz_example
from repro.circuit.draw import draw_circuit


class TestDrawCircuit:
    def test_ghz_shape(self):
        art = draw_circuit(ghz_example())
        lines = art.splitlines()
        assert lines[0].startswith("q0: ")
        assert "H" in lines[0]
        assert lines[0].count("●") == 2
        assert art.count("⊕") == 2

    def test_empty_circuit(self):
        art = draw_circuit(QuantumCircuit(2))
        assert art.splitlines()[0].startswith("q0: ")

    def test_parameterized_gate_label(self):
        circuit = QuantumCircuit(1).rz(1.5, 0)
        assert "RZ(1.5)" in draw_circuit(circuit)

    def test_swap_symbols(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        art = draw_circuit(circuit)
        assert art.count("x") == 2

    def test_control_connector_passes_untouched_wire(self):
        circuit = QuantumCircuit(3).cx(0, 2)
        art = draw_circuit(circuit)
        q1_line = [l for l in art.splitlines() if l.startswith("q1")][0]
        assert "│" in q1_line

    def test_parallel_gates_share_column(self):
        parallel = QuantumCircuit(2).h(0).h(1)
        sequential = QuantumCircuit(2).h(0).h(0)
        assert len(draw_circuit(parallel).splitlines()[0]) <= len(
            draw_circuit(sequential).splitlines()[0]
        )

    def test_wide_circuit_wraps(self):
        circuit = QuantumCircuit(1)
        for _ in range(100):
            circuit.h(0)
        art = draw_circuit(circuit, max_width=40)
        assert "..." in art

    def test_all_gate_kinds_render(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1).cx(0, 1).cz(1, 2).ccx(0, 1, 2)
        circuit.swap(0, 2).rz(0.5, 1).cp(0.25, 0, 2)
        art = draw_circuit(circuit)
        assert "T" in art and "Z" in art and "P(0.25)" in art
