"""QASM round trips and diagnostics for symbolic parameter expressions.

The ``// repro:params`` pragma declares free parameters; angle
expressions over them parse into exact :class:`ParamExpr` values and the
writer re-emits them canonically, so writer→parser→writer is a fixpoint.
Nonlinear uses are rejected with located caret errors, and files without
the pragma stay bit-for-bit on the plain float path.
"""

import math
from fractions import Fraction

import pytest

from repro.circuit import (
    QuantumCircuit,
    circuit_from_qasm,
    circuit_to_qasm,
)
from repro.circuit.qasm import QasmError
from repro.circuit.symbolic import ParamExpr, circuit_parameters, symbol


def _symbolic_circuit() -> QuantumCircuit:
    theta = symbol("theta")
    phi = symbol("phi")
    circuit = QuantumCircuit(2, name="ansatz")
    circuit.add("rz", [0], params=[theta])
    circuit.add("ry", [1], params=[-theta])
    circuit.add("rx", [0], params=[theta / 2])
    circuit.add("p", [1], params=[3 * phi / 2 + math.pi / 4])
    circuit.cx(0, 1)
    circuit.add("rz", [1], params=[2 * theta - phi])
    return circuit


class TestPragmaRoundTrip:
    def test_writer_parser_writer_fixpoint(self):
        text = circuit_to_qasm(_symbolic_circuit())
        parsed = circuit_from_qasm(text)
        assert circuit_to_qasm(parsed) == text

    def test_pragma_emitted_with_sorted_parameters(self):
        text = circuit_to_qasm(_symbolic_circuit())
        assert "// repro:params phi theta" in text

    def test_parameters_survive_exactly(self):
        parsed = circuit_from_qasm(circuit_to_qasm(_symbolic_circuit()))
        assert circuit_parameters(parsed) == ("phi", "theta")
        ops = list(parsed)
        assert ops[0].params[0] == symbol("theta")
        assert ops[2].params[0].terms == (("theta", Fraction(1, 2)),)
        # The dyadic-π constant offset survives as an exact float.
        last = ops[3].params[0]
        assert last.terms == (("phi", Fraction(3, 2)),)
        assert last.const == math.pi / 4

    def test_concrete_circuit_emits_no_pragma(self):
        circuit = QuantumCircuit(1)
        circuit.add("rz", [0], params=[0.5])
        text = circuit_to_qasm(circuit)
        assert "repro:params" not in text
        assert circuit_to_qasm(circuit_from_qasm(text)) == text

    def test_concrete_angles_stay_float_under_pragma(self):
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[1];\n"
            "// repro:params theta\n"
            "rz(0.5) q[0];\n"
            "rz(theta) q[0];\n"
        )
        ops = list(circuit_from_qasm(text))
        assert type(ops[0].params[0]) is float
        assert ops[0].params[0] == 0.5
        assert isinstance(ops[1].params[0], ParamExpr)

    def test_integer_literals_scale_exactly(self):
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[1];\n"
            "// repro:params theta\n"
            "rz(3*theta/4) q[0];\n"
        )
        (op,) = list(circuit_from_qasm(text))
        assert op.params[0].terms == (("theta", Fraction(3, 4)),)

    def test_pi_times_parameter_is_rejected(self):
        # pi parses to a float, so pi*theta is fine; theta*theta is not.
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[1];\n"
            "// repro:params theta\n"
            "rz(pi*theta) q[0];\n"
        )
        (op,) = list(circuit_from_qasm(text))
        assert isinstance(op.params[0], ParamExpr)


def _qasm(body: str) -> str:
    return (
        "OPENQASM 2.0;\n"
        'include "qelib1.inc";\n'
        "qreg q[2];\n"
        "// repro:params theta phi\n"
        f"{body}\n"
    )


class TestNonlinearDiagnostics:
    def _expect_caret(self, text: str, fragment: str) -> None:
        with pytest.raises(QasmError) as excinfo:
            circuit_from_qasm(text)
        message = str(excinfo.value)
        assert fragment in message
        assert "line " in message and "^" in message

    def test_product_of_parameters(self):
        self._expect_caret(
            _qasm("rz(theta*phi) q[0];"),
            "cannot multiply two parameter expressions",
        )

    def test_division_by_parameter(self):
        self._expect_caret(
            _qasm("rz(1/theta) q[0];"),
            "cannot divide by a parameter expression",
        )

    def test_parameter_inside_function(self):
        self._expect_caret(
            _qasm("rz(sin(theta)) q[0];"),
            "only linear expressions are supported",
        )

    def test_parameter_in_exponent(self):
        self._expect_caret(
            _qasm("rz(theta^2) q[0];"),
            "cannot exponentiate a parameter expression",
        )

    def test_invalid_pragma_name(self):
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[1];\n"
            "// repro:params 2bad\n"
            "rz(0.5) q[0];\n"
        )
        with pytest.raises(QasmError):
            circuit_from_qasm(text)

    def test_reserved_pragma_name(self):
        text = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[1];\n"
            "// repro:params pi\n"
            "rz(0.5) q[0];\n"
        )
        with pytest.raises(QasmError):
            circuit_from_qasm(text)
