"""Unit tests for the gate model (`repro.circuit.gate`)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit.gate import (
    GATE_ALIASES,
    Operation,
    STANDARD_GATES,
    base_matrix,
    gate_definition,
)


class TestGateMatrices:
    def test_all_standard_gates_are_unitary(self):
        for name, defn in STANDARD_GATES.items():
            params = tuple(0.7 + 0.1 * k for k in range(defn.num_params))
            matrix = defn.matrix(params)
            dim = 2**defn.num_targets
            assert matrix.shape == (dim, dim)
            np.testing.assert_allclose(
                matrix @ matrix.conj().T, np.eye(dim), atol=1e-12
            )

    def test_hadamard_squares_to_identity(self):
        h = base_matrix("h")
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)

    def test_s_is_sqrt_z(self):
        np.testing.assert_allclose(
            base_matrix("s") @ base_matrix("s"), base_matrix("z"), atol=1e-12
        )

    def test_t_is_sqrt_s(self):
        np.testing.assert_allclose(
            base_matrix("t") @ base_matrix("t"), base_matrix("s"), atol=1e-12
        )

    def test_sx_is_sqrt_x(self):
        np.testing.assert_allclose(
            base_matrix("sx") @ base_matrix("sx"), base_matrix("x"), atol=1e-12
        )

    def test_rz_at_pi_is_z_up_to_phase(self):
        rz = base_matrix("rz", (math.pi,))
        z = base_matrix("z")
        ratio = rz[0, 0] / z[0, 0]
        np.testing.assert_allclose(ratio * z, rz, atol=1e-12)

    def test_u3_special_cases(self):
        np.testing.assert_allclose(
            base_matrix("u3", (0.0, 0.0, 0.7)), base_matrix("p", (0.7,)),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            base_matrix("u3", (1.1, 0.0, 0.0)), base_matrix("ry", (1.1,)),
            atol=1e-12,
        )

    def test_u2_equals_u3_with_half_pi_theta(self):
        np.testing.assert_allclose(
            base_matrix("u2", (0.4, 1.2)),
            base_matrix("u3", (math.pi / 2, 0.4, 1.2)),
            atol=1e-12,
        )

    def test_param_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            base_matrix("rz", ())
        with pytest.raises(ValueError):
            base_matrix("h", (0.3,))

    def test_aliases_resolve(self):
        for alias, target in GATE_ALIASES.items():
            if alias == "cnot":
                continue  # handled by the QASM layer with a control
            assert gate_definition(alias).name == target

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gate_definition("frobnicate")


class TestInverses:
    @pytest.mark.parametrize("name", sorted(STANDARD_GATES))
    def test_inverse_matrix_is_adjoint(self, name):
        defn = STANDARD_GATES[name]
        if name == "iswap":
            pytest.skip("iswap has no registered inverse rule")
        params = tuple(0.3 + 0.2 * k for k in range(defn.num_params))
        inv_name, inv_params = defn.inverse_of(params)
        inverse = STANDARD_GATES[inv_name].matrix(inv_params)
        np.testing.assert_allclose(
            inverse, defn.matrix(params).conj().T, atol=1e-12
        )

    @given(st.floats(-10, 10))
    def test_rotation_inverse_negates_angle(self, theta):
        op = Operation("rz", (0,), params=(theta,))
        assert op.inverse().params == (-theta,)

    def test_operation_inverse_roundtrip(self):
        op = Operation("u3", (1,), (0,), (0.3, 0.8, 1.7))
        double = op.inverse().inverse()
        np.testing.assert_allclose(double.matrix(), op.matrix(), atol=1e-12)


class TestOperation:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", (1,), (1,))
        with pytest.raises(ValueError):
            Operation("swap", (2, 2))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", (-1,))

    def test_target_count_enforced(self):
        with pytest.raises(ValueError):
            Operation("swap", (0,))
        with pytest.raises(ValueError):
            Operation("h", (0, 1))

    def test_qubits_property(self):
        op = Operation("x", (3,), (1, 2))
        assert op.qubits == (3, 1, 2)
        assert op.num_qubits == 3
        assert op.is_controlled

    def test_remapped(self):
        op = Operation("x", (0,), (1,))
        remapped = op.remapped({0: 5, 1: 7})
        assert remapped.targets == (5,)
        assert remapped.controls == (7,)

    def test_alias_normalized_in_operation(self):
        op = Operation("u1", (0,), params=(0.5,))
        assert op.name == "p"


class TestCliffordPredicate:
    @pytest.mark.parametrize(
        "name", ["h", "s", "sdg", "x", "y", "z", "sx", "swap"]
    )
    def test_parameter_free_cliffords(self, name):
        targets = (0, 1) if name == "swap" else (0,)
        assert Operation(name, targets).is_clifford()

    def test_t_is_not_clifford(self):
        assert not Operation("t", (0,)).is_clifford()

    def test_rz_at_clifford_angles(self):
        assert Operation("rz", (0,), params=(math.pi / 2,)).is_clifford()
        assert Operation("rz", (0,), params=(math.pi,)).is_clifford()
        assert not Operation("rz", (0,), params=(math.pi / 4,)).is_clifford()

    def test_cx_is_clifford_toffoli_is_not(self):
        assert Operation("x", (1,), (0,)).is_clifford()
        assert not Operation("x", (2,), (0, 1)).is_clifford()
