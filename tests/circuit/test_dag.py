"""Tests for the circuit DAG and commutation rules (`repro.circuit.dag`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.dag import CircuitDAG, operations_commute
from repro.circuit.gate import Operation
from tests.conftest import random_circuit


class TestCircuitDAG:
    def test_empty(self):
        dag = CircuitDAG(QuantumCircuit(2))
        assert dag.num_nodes == 0
        assert dag.front_layer() == []
        assert dag.longest_path_length() == 0

    def test_chain_dependencies(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(0) == set()
        assert dag.predecessors(1) == {0}
        assert dag.successors(1) == {2}

    def test_parallel_gates_independent(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        dag = CircuitDAG(circuit)
        assert set(dag.front_layer()) == {0, 1}

    def test_two_qubit_gate_joins_wires(self):
        circuit = QuantumCircuit(2).h(0).x(1).cx(0, 1)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(2) == {0, 1}

    def test_longest_path_matches_depth(self):
        for seed in range(4):
            circuit = random_circuit(4, 20, seed=seed)
            assert CircuitDAG(circuit).longest_path_length() == circuit.depth()

    def test_topological_order_respects_dependencies(self):
        circuit = random_circuit(4, 25, seed=5)
        dag = CircuitDAG(circuit)
        position = {op: i for i, op in enumerate(dag.topological_order())}
        for index in range(dag.num_nodes):
            for predecessor in dag.predecessors(index):
                assert position[predecessor] < position[index]

    def test_to_circuit_is_equivalent(self):
        circuit = random_circuit(4, 25, seed=6)
        rebuilt = CircuitDAG(circuit).to_circuit()
        assert unitaries_equivalent(
            circuit_unitary(rebuilt), circuit_unitary(circuit)
        )


class TestCommutationRules:
    def op(self, name, targets, controls=(), params=()):
        return Operation(name, tuple(targets), tuple(controls), tuple(params))

    def test_disjoint_supports(self):
        assert operations_commute(self.op("h", [0]), self.op("x", [1]))

    def test_diagonal_pairs(self):
        assert operations_commute(self.op("t", [0]), self.op("rz", [0], params=[0.3]))
        assert operations_commute(
            self.op("z", [1], [0]), self.op("p", [0], params=[0.5])
        )

    def test_cx_shared_control(self):
        assert operations_commute(
            self.op("x", [1], [0]), self.op("x", [2], [0])
        )

    def test_cx_shared_target(self):
        assert operations_commute(
            self.op("x", [2], [0]), self.op("x", [2], [1])
        )

    def test_cx_chain_does_not_commute(self):
        assert not operations_commute(
            self.op("x", [1], [0]), self.op("x", [2], [1])
        )

    def test_diagonal_on_cx_control(self):
        assert operations_commute(self.op("x", [1], [0]), self.op("t", [0]))

    def test_diagonal_on_cx_target_does_not(self):
        assert not operations_commute(
            self.op("x", [1], [0]), self.op("t", [1])
        )

    def test_x_axis_on_cx_target(self):
        assert operations_commute(
            self.op("x", [1], [0]), self.op("rx", [1], params=[0.7])
        )

    def test_x_axis_on_cx_control_does_not(self):
        assert not operations_commute(
            self.op("x", [1], [0]), self.op("x", [0])
        )

    def test_h_never_assumed_to_commute_on_shared_wire(self):
        assert not operations_commute(self.op("h", [0]), self.op("t", [0]))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_commutation_claim_is_sound(self, seed):
        """Whenever the syntactic rule claims commutation, the dense
        matrices really commute."""
        import itertools
        import random as random_module

        import numpy as np

        from repro.circuit.unitary import operation_unitary

        rng = random_module.Random(seed)
        pool = [
            self.op("h", [rng.randrange(3)]),
            self.op("t", [rng.randrange(3)]),
            self.op("rz", [rng.randrange(3)], params=[rng.uniform(0, 6)]),
            self.op("rx", [rng.randrange(3)], params=[rng.uniform(0, 6)]),
            self.op("x", [0], [1]),
            self.op("x", [2], [0]),
            self.op("z", [1], [2]),
        ]
        for a, b in itertools.combinations(pool, 2):
            if operations_commute(a, b):
                ua = operation_unitary(a, 3)
                ub = operation_unitary(b, 3)
                assert np.allclose(ua @ ub, ub @ ua, atol=1e-9), (a, b)


class TestCommutationOptimizer:
    def test_cx_pair_cancels_through_commuting_gates(self):
        from repro.compile.optimize import optimize_circuit

        circuit = QuantumCircuit(2).cx(0, 1).z(0).x(1).cx(0, 1)
        optimized = optimize_circuit(circuit, level=3)
        assert len(optimized) < 4
        assert unitaries_equivalent(
            circuit_unitary(optimized), circuit_unitary(circuit)
        )

    def test_level_one_does_not_reorder(self):
        from repro.compile.optimize import optimize_circuit

        circuit = QuantumCircuit(2).cx(0, 1).z(0).x(1).cx(0, 1)
        assert len(optimize_circuit(circuit, level=1)) == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_level_three_preserves_semantics(self, seed):
        from repro.compile.optimize import optimize_circuit

        circuit = random_circuit(4, 30, seed=seed)
        optimized = optimize_circuit(circuit, level=3)
        assert unitaries_equivalent(
            circuit_unitary(optimized), circuit_unitary(circuit)
        )

    def test_rotation_merge_through_cx(self):
        from repro.compile.optimize import commutation_cancel_pass

        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0).cx(0, 1).rz(0.4, 0)
        merged = commutation_cancel_pass(circuit)
        rz_ops = [op for op in merged if op.name == "rz"]
        assert len(rz_ops) == 1
        assert rz_ops[0].params[0] == pytest.approx(0.7)
