"""Unit tests for `repro.circuit.circuit.QuantumCircuit`."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.circuit.gate import Operation
from tests.conftest import random_circuit


class TestBuilding:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert len(circuit) == 0
        assert circuit.num_qubits == 3
        assert circuit.depth() == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(-1)

    def test_out_of_range_operation_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(2)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3)
        result = circuit.h(0).cx(0, 1).ccx(0, 1, 2)
        assert result is circuit
        assert len(circuit) == 3

    def test_builder_methods_cover_gate_set(self):
        circuit = QuantumCircuit(4)
        circuit.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0)
        circuit.sx(0).sxdg(0)
        circuit.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0)
        circuit.u2(0.1, 0.2, 0).u3(0.1, 0.2, 0.3, 0)
        circuit.cx(0, 1).cy(0, 1).cz(0, 1).ch(0, 1).cs(0, 1)
        circuit.crx(0.1, 0, 1).cry(0.2, 0, 1).crz(0.3, 0, 1).cp(0.4, 0, 1)
        circuit.swap(0, 1).iswap(0, 1).rzz(0.5, 0, 1).rxx(0.6, 0, 1)
        circuit.ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2)
        circuit.mcx([0, 1, 2], 3).mcz([0, 1, 2], 3).mcp(0.7, [0, 1, 2], 3)
        assert len(circuit) == 36

    def test_iteration_and_indexing(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        ops = list(circuit)
        assert circuit[0] == ops[0]
        assert circuit[-1].name == "x"


class TestStructure:
    def test_inverse_reverses_and_inverts(self):
        circuit = random_circuit(3, 25, seed=7)
        inverse = circuit.inverse()
        assert len(inverse) == len(circuit)
        identity = circuit_unitary(circuit.compose(inverse))
        np.testing.assert_allclose(identity, np.eye(8), atol=1e-9)

    def test_inverse_swaps_layout_metadata(self):
        compiled = compiled_ghz_example()
        inverse = compiled.inverse()
        assert inverse.initial_layout == compiled.output_permutation
        assert inverse.output_permutation == compiled.initial_layout

    def test_compose_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_compose_runs_self_first(self):
        a = QuantumCircuit(1).x(0)
        b = QuantumCircuit(1).h(0)
        composed = a.compose(b)
        expected = (
            circuit_unitary(b) @ circuit_unitary(a)
        )
        np.testing.assert_allclose(
            circuit_unitary(composed), expected, atol=1e-12
        )

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_remapped(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        remapped = circuit.remapped({0: 2, 1: 0}, num_qubits=3)
        assert remapped[0].controls == (2,)
        assert remapped[0].targets == (0,)


class TestStatistics:
    def test_count_ops_uses_controlled_names(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2).cx(1, 2)
        counts = circuit.count_ops()
        assert counts["h"] == 1
        assert counts["cx"] == 2
        assert counts["ccx"] == 1

    def test_depth(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2)  # depth 1: all parallel
        assert circuit.depth() == 1
        circuit.cx(0, 1)
        assert circuit.depth() == 2
        circuit.x(2)
        assert circuit.depth() == 2

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        assert circuit.two_qubit_gate_count() == 2

    def test_t_count_and_non_clifford(self):
        circuit = QuantumCircuit(2).t(0).tdg(1).h(0).rz(math.pi / 4, 0)
        assert circuit.t_count() == 2
        assert circuit.non_clifford_count() == 3

    def test_used_qubits(self):
        circuit = QuantumCircuit(5).cx(1, 3)
        assert circuit.used_qubits() == (1, 3)


class TestLayoutResolution:
    def test_identity_defaults(self):
        circuit = QuantumCircuit(3)
        assert circuit.resolved_initial_layout() == {0: 0, 1: 1, 2: 2}
        assert circuit.resolved_output_permutation() == {0: 0, 1: 1, 2: 2}

    def test_partial_layout_completed_to_bijection(self):
        circuit = QuantumCircuit(4)
        circuit.initial_layout = {0: 2}  # wire 0 holds logical 2
        resolved = circuit.resolved_initial_layout()
        assert resolved[0] == 2
        assert sorted(resolved.values()) == [0, 1, 2, 3]
        # wire 2's identity slot is taken; wires 1 and 3 keep theirs
        assert resolved[1] == 1
        assert resolved[3] == 3

    def test_non_injective_layout_rejected(self):
        circuit = QuantumCircuit(3)
        circuit.initial_layout = {0: 1, 2: 1}
        with pytest.raises(ValueError):
            circuit.resolved_initial_layout()

    def test_out_of_range_layout_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.output_permutation = {0: 5}
        with pytest.raises(ValueError):
            circuit.resolved_output_permutation()


class TestExamples:
    def test_fig1_ghz_statevector(self):
        from repro.circuit.unitary import statevector

        state = statevector(ghz_example())
        np.testing.assert_allclose(abs(state[0]) ** 2, 0.5, atol=1e-12)
        np.testing.assert_allclose(abs(state[7]) ** 2, 0.5, atol=1e-12)

    def test_fig2_compiled_ghz_metadata(self):
        compiled = compiled_ghz_example()
        # paper: q0 measured on Q0, q1 on Q2, q2 on Q1
        assert compiled.output_permutation[2] == 1
        assert compiled.output_permutation[1] == 2

    def test_fig2_compiled_ghz_is_equivalent(self):
        from repro.circuit.unitary import permutation_matrix

        original = ghz_example()
        compiled = compiled_ghz_example()
        full = np.kron(np.eye(4), circuit_unitary(original))
        out = compiled.resolved_output_permutation()
        p_out = permutation_matrix({l: p for p, l in out.items()}, 5)
        assert unitaries_equivalent(
            p_out.conj().T @ circuit_unitary(compiled), full
        )
