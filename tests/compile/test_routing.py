"""Tests for layout and SWAP routing (`repro.compile.layout` / `routing`)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.unitary import permutation_matrix
from repro.compile.architectures import grid_architecture, line_architecture
from repro.compile.layout import greedy_layout, trivial_layout
from repro.compile.routing import route_circuit
from tests.conftest import random_circuit


def routed_equivalent(original, routed):
    """Dense ground-truth check honouring layout metadata."""
    n, N = original.num_qubits, routed.num_qubits
    full = np.kron(np.eye(2 ** (N - n)), circuit_unitary(original))
    layout = routed.resolved_initial_layout()
    out = routed.resolved_output_permutation()
    p_in = permutation_matrix({l: p for p, l in layout.items()}, N)
    p_out = permutation_matrix({l: p for p, l in out.items()}, N)
    return unitaries_equivalent(
        p_out.conj().T @ circuit_unitary(routed) @ p_in, full
    )


class TestLayout:
    def test_trivial_layout(self):
        circuit = QuantumCircuit(3)
        assert trivial_layout(circuit, line_architecture(5)) == {0: 0, 1: 1, 2: 2}

    def test_trivial_layout_too_wide_rejected(self):
        with pytest.raises(ValueError):
            trivial_layout(QuantumCircuit(6), line_architecture(5))

    def test_greedy_layout_is_injective(self):
        circuit = random_circuit(4, 20, seed=3)
        placement = greedy_layout(circuit, grid_architecture(3, 3))
        assert len(set(placement.values())) == 4

    def test_greedy_layout_places_partners_close(self):
        circuit = QuantumCircuit(2)
        for _ in range(5):
            circuit.cx(0, 1)
        device = line_architecture(6)
        placement = greedy_layout(circuit, device)
        assert device.distance(placement[0], placement[1]) == 1


class TestRouting:
    def test_adjacent_gates_unchanged(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        routed = route_circuit(circuit, line_architecture(2))
        assert len(routed) == 1

    def test_distant_gate_inserts_swaps(self):
        circuit = QuantumCircuit(3).cx(0, 2)
        routed = route_circuit(
            circuit, line_architecture(3), decompose_swaps=False
        )
        assert routed.count_ops()["swap"] >= 1

    def test_swap_decomposition_default(self):
        circuit = QuantumCircuit(3).cx(0, 2)
        routed = route_circuit(circuit, line_architecture(3))
        assert "swap" not in routed.count_ops()
        assert routed.count_ops()["cx"] >= 4

    def test_gate_wider_than_two_rejected(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError):
            route_circuit(circuit, line_architecture(3))

    def test_non_injective_placement_rejected(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            route_circuit(circuit, line_architecture(3), {0: 1, 1: 1})

    def test_output_permutation_covers_all_wires(self):
        circuit = random_circuit(3, 15, seed=2, gate_set="clifford_t")
        routed = route_circuit(circuit, line_architecture(5))
        assert sorted(routed.initial_layout) == list(range(5))
        assert sorted(routed.output_permutation) == list(range(5))
        assert sorted(routed.output_permutation.values()) == list(range(5))

    @pytest.mark.parametrize("seed", range(4))
    def test_routed_circuit_equivalent_line(self, seed):
        circuit = random_circuit(4, 15, seed=seed, gate_set="clifford_t")
        routed = route_circuit(circuit, line_architecture(6))
        assert routed_equivalent(circuit, routed)

    @pytest.mark.parametrize("seed", range(4))
    def test_routed_circuit_equivalent_grid_greedy(self, seed):
        circuit = random_circuit(5, 20, seed=seed, gate_set="clifford_t")
        device = grid_architecture(2, 4)
        placement = greedy_layout(circuit, device)
        routed = route_circuit(circuit, device, placement)
        assert routed_equivalent(circuit, routed)

    def test_paper_fig2_scenario(self):
        """GHZ on a 5-qubit line: one SWAP, permuted outputs."""
        ghz = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2)
        routed = route_circuit(
            ghz, line_architecture(5), decompose_swaps=False
        )
        assert routed.count_ops()["swap"] == 1
        out = routed.resolved_output_permutation()
        assert out[1] == 2 and out[2] == 1  # q1 ends on Q2, q2 on Q1
        assert routed_equivalent(ghz, routed)


class TestLookaheadRouting:
    def test_unknown_method_rejected(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            route_circuit(
                circuit, line_architecture(3), routing_method="teleport"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_lookahead_routed_circuit_equivalent(self, seed):
        circuit = random_circuit(4, 20, seed=seed, gate_set="clifford_t")
        routed = route_circuit(
            circuit, line_architecture(6), routing_method="lookahead"
        )
        assert routed_equivalent(circuit, routed)

    @pytest.mark.parametrize("seed", range(4))
    def test_lookahead_equivalent_on_grid(self, seed):
        circuit = random_circuit(6, 25, seed=seed, gate_set="clifford_t")
        device = grid_architecture(2, 4)
        routed = route_circuit(circuit, device, routing_method="lookahead")
        assert routed_equivalent(circuit, routed)
        for op in routed:
            if op.num_qubits == 2:
                assert device.adjacent(*op.qubits)

    def test_lookahead_never_worse_on_repeated_pair(self):
        """A circuit that keeps using the same distant pair: lookahead
        should not shuttle qubits back and forth."""
        circuit = QuantumCircuit(4)
        for _ in range(6):
            circuit.cx(0, 3)
            circuit.cx(1, 2)
        device = line_architecture(4)
        basic = route_circuit(
            circuit, device, decompose_swaps=False, routing_method="basic"
        )
        lookahead = route_circuit(
            circuit, device, decompose_swaps=False,
            routing_method="lookahead",
        )
        assert lookahead.count_ops().get("swap", 0) <= basic.count_ops().get(
            "swap", 0
        )

    def test_compile_circuit_accepts_routing_method(self):
        from repro.compile import compile_circuit

        circuit = random_circuit(4, 15, seed=9, gate_set="clifford_t")
        compiled = compile_circuit(
            circuit, line_architecture(6), routing_method="lookahead"
        )
        assert routed_equivalent(circuit, compiled)
