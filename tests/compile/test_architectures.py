"""Tests for coupling maps (`repro.compile.architectures`)."""

import networkx as nx
import pytest

from repro.compile.architectures import (
    CouplingMap,
    grid_architecture,
    line_architecture,
    manhattan_architecture,
    ring_architecture,
)


class TestCouplingMap:
    def test_adjacency(self):
        device = line_architecture(4)
        assert device.adjacent(0, 1)
        assert device.adjacent(1, 0)
        assert not device.adjacent(0, 2)

    def test_distance(self):
        device = line_architecture(5)
        assert device.distance(0, 4) == 4
        assert device.distance(2, 2) == 0

    def test_shortest_path_endpoints(self):
        device = grid_architecture(3, 3)
        path = device.shortest_path(0, 8)
        assert path[0] == 0
        assert path[-1] == 8
        assert len(path) == device.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert device.adjacent(a, b)

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap(4, [(0, 1), (2, 3)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap(2, [(0, 5)])


class TestTopologies:
    def test_line(self):
        device = line_architecture(5)
        assert device.num_qubits == 5
        assert len(device.edges) == 4

    def test_ring(self):
        device = ring_architecture(6)
        assert len(device.edges) == 6
        assert device.adjacent(0, 5)

    def test_grid(self):
        device = grid_architecture(2, 3)
        assert device.num_qubits == 6
        assert len(device.edges) == 7

    def test_manhattan_is_65_qubit_heavy_hex(self):
        """The paper's target: 65 qubits, degree <= 3, connected."""
        device = manhattan_architecture()
        assert device.num_qubits == 65
        assert nx.is_connected(device.graph)
        degrees = [device.graph.degree(q) for q in range(65)]
        assert max(degrees) <= 3
        # heavy-hex devices are sparse: roughly 72 edges on 65 qubits
        assert 60 <= len(device.edges) <= 80

    def test_manhattan_deterministic(self):
        assert manhattan_architecture().edges == manhattan_architecture().edges
