"""Tests for the optimization passes (`repro.compile.optimize`)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.compile.optimize import cancel_and_merge_pass, optimize_circuit
from tests.conftest import random_circuit


class TestCancellation:
    def test_adjacent_hadamards_cancel(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(optimize_circuit(circuit)) == 0

    def test_adjacent_cx_cancel(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert len(optimize_circuit(circuit)) == 0

    def test_s_sdg_cancel(self):
        circuit = QuantumCircuit(1).s(0).sdg(0)
        assert len(optimize_circuit(circuit)) == 0

    def test_interleaved_other_qubit_does_not_block(self):
        circuit = QuantumCircuit(2).h(0).x(1).h(0)
        optimized = optimize_circuit(circuit)
        assert optimized.count_ops() == {"x": 1}

    def test_gate_on_shared_qubit_blocks_cancellation(self):
        circuit = QuantumCircuit(2).cx(0, 1).x(1).cx(0, 1)
        optimized = optimize_circuit(circuit)
        assert optimized.count_ops()["cx"] == 2

    def test_cascading_cancellation(self):
        # h x x h collapses completely across rounds
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(optimize_circuit(circuit)) == 0

    def test_mismatched_qubits_not_cancelled(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert len(optimize_circuit(circuit)) == 2


class TestRotationMerging:
    def test_rz_angles_add(self):
        circuit = QuantumCircuit(1).rz(0.3, 0).rz(0.4, 0)
        optimized = optimize_circuit(circuit)
        assert len(optimized) == 1
        assert optimized[0].params[0] == pytest.approx(0.7)

    def test_full_turn_removed(self):
        circuit = QuantumCircuit(1).rz(1.5 * math.pi, 0).rz(0.5 * math.pi, 0)
        assert len(optimize_circuit(circuit)) == 0

    def test_crz_merge(self):
        circuit = QuantumCircuit(2).crz(0.3, 0, 1).crz(-0.3, 0, 1)
        assert len(optimize_circuit(circuit)) == 0

    def test_rzz_merge(self):
        circuit = QuantumCircuit(2).rzz(0.2, 0, 1).rzz(0.3, 0, 1)
        optimized = optimize_circuit(circuit)
        assert len(optimized) == 1
        assert optimized[0].params[0] == pytest.approx(0.5)

    def test_different_axes_not_merged(self):
        circuit = QuantumCircuit(1).rz(0.3, 0).rx(0.4, 0)
        assert len(optimize_circuit(circuit)) == 2


class TestLevels:
    def test_level_zero_is_noop(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(optimize_circuit(circuit, level=0)) == 2

    @pytest.mark.parametrize("level", [1, 2])
    @pytest.mark.parametrize("seed", range(3))
    def test_semantics_preserved(self, level, seed):
        circuit = random_circuit(4, 30, seed=seed)
        optimized = optimize_circuit(circuit, level=level)
        assert unitaries_equivalent(
            circuit_unitary(optimized), circuit_unitary(circuit)
        )

    def test_level_two_reduces_single_qubit_runs(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0).t(0).h(0)
        optimized = optimize_circuit(circuit, level=2)
        assert len(optimized) == 1

    def test_metadata_preserved(self):
        circuit = QuantumCircuit(2).h(0).h(0)
        circuit.initial_layout = {0: 1, 1: 0}
        optimized = optimize_circuit(circuit)
        assert optimized.initial_layout == circuit.initial_layout

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_optimizer_never_grows_circuit(self, seed):
        circuit = random_circuit(3, 20, seed=seed)
        assert len(optimize_circuit(circuit)) <= len(circuit)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_optimizer_idempotent(self, seed):
        circuit = random_circuit(3, 20, seed=seed)
        once = optimize_circuit(circuit)
        twice = optimize_circuit(once)
        assert once.operations == twice.operations
