"""End-to-end tests of the compilation flow (`repro.compile.compiler`)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.unitary import permutation_matrix
from repro.compile import (
    compile_circuit,
    grid_architecture,
    line_architecture,
    manhattan_architecture,
)
from tests.conftest import random_circuit
from tests.compile.test_routing import routed_equivalent


class TestCompileCircuit:
    @pytest.mark.parametrize("layout", ["trivial", "greedy"])
    @pytest.mark.parametrize("seed", range(3))
    def test_compiled_is_equivalent(self, layout, seed):
        circuit = random_circuit(4, 20, seed=seed)
        compiled = compile_circuit(
            circuit, line_architecture(6), layout_method=layout
        )
        assert routed_equivalent(circuit, compiled)

    def test_output_respects_coupling_map(self):
        circuit = random_circuit(4, 20, seed=5)
        device = grid_architecture(2, 3)
        compiled = compile_circuit(circuit, device)
        for op in compiled:
            if op.num_qubits == 2:
                a, b = op.qubits
                assert device.adjacent(a, b), op

    def test_output_gate_set(self):
        circuit = random_circuit(4, 20, seed=6)
        compiled = compile_circuit(circuit, line_architecture(6))
        for op in compiled:
            assert (not op.controls and op.name == "u3") or (
                op.name == "x" and len(op.controls) == 1
            )

    def test_swaps_decomposed_by_default(self):
        circuit = QuantumCircuit(3).cx(0, 2)
        compiled = compile_circuit(circuit, line_architecture(3))
        assert "swap" not in compiled.count_ops()

    def test_swap_primitives_on_request(self):
        circuit = QuantumCircuit(3).cx(0, 2)
        compiled = compile_circuit(
            circuit,
            line_architecture(3),
            layout_method="trivial",
            decompose_swaps=False,
            optimization_level=0,
        )
        assert compiled.count_ops().get("swap", 0) >= 1

    def test_existing_layout_metadata_rejected(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        circuit.initial_layout = {0: 1, 1: 0}
        with pytest.raises(ValueError):
            compile_circuit(circuit, line_architecture(3))

    def test_unknown_layout_method_rejected(self):
        with pytest.raises(ValueError):
            compile_circuit(
                QuantumCircuit(1), line_architecture(2), layout_method="magic"
            )

    def test_explicit_placement(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        compiled = compile_circuit(
            circuit, line_architecture(4), placement={0: 2, 1: 3}
        )
        assert compiled.initial_layout[2] == 0
        assert compiled.initial_layout[3] == 1
        assert routed_equivalent(circuit, compiled)

    def test_high_level_gates_handled(self):
        circuit = QuantumCircuit(4).ccx(0, 1, 2).mcx([0, 1, 2], 3)
        compiled = compile_circuit(circuit, line_architecture(5))
        assert routed_equivalent(circuit, compiled)

    def test_compile_to_manhattan(self):
        """The paper's setting: compile to the 65-qubit heavy-hex device."""
        circuit = random_circuit(4, 10, seed=7, gate_set="clifford_t")
        compiled = compile_circuit(circuit, manhattan_architecture())
        assert compiled.num_qubits == 65
        device = manhattan_architecture()
        for op in compiled:
            if op.num_qubits == 2:
                assert device.adjacent(*op.qubits)
