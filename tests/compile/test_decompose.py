"""Tests for gate decomposition (`repro.compile.decompose`)."""

import cmath
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.gate import Operation, base_matrix
from repro.compile.decompose import (
    decompose_for_zx,
    decompose_to_basis,
    decompose_to_cx_and_singles,
    zyz_angles,
)
from tests.conftest import random_circuit

CONTROLLED_CASES = [
    (Operation("x", (2,), (0, 1)), 3),
    (Operation("z", (2,), (0, 1)), 3),
    (Operation("x", (3,), (0, 1, 2)), 4),
    (Operation("x", (0,), (1, 2, 3, 4)), 5),
    (Operation("p", (1,), (0,), (0.7,)), 2),
    (Operation("p", (2,), (0, 1), (0.7,)), 3),
    (Operation("rz", (1,), (0,), (1.1,)), 2),
    (Operation("ry", (1,), (0,), (1.1,)), 2),
    (Operation("rx", (1,), (0,), (1.1,)), 2),
    (Operation("h", (1,), (0,)), 2),
    (Operation("y", (1,), (0,)), 2),
    (Operation("s", (1,), (0,)), 2),
    (Operation("tdg", (1,), (0,)), 2),
    (Operation("sx", (1,), (0,)), 2),
    (Operation("u3", (1,), (0,), (0.3, 0.9, 1.7)), 2),
    (Operation("u2", (1,), (0,), (0.9, 1.7)), 2),
    (Operation("swap", (0, 1)), 2),
    (Operation("swap", (1, 2), (0,)), 3),
    (Operation("swap", (1, 2), (0, 3)), 4),
    (Operation("iswap", (0, 1)), 2),
    (Operation("iswap", (1, 2), (0,)), 3),
    (Operation("rzz", (0, 1), (), (0.8,)), 2),
    (Operation("rzz", (1, 2), (0,), (0.8,)), 3),
    (Operation("rxx", (0, 1), (), (0.8,)), 2),
]


class TestLowering:
    @pytest.mark.parametrize("op,n", CONTROLLED_CASES, ids=str)
    def test_cx_and_singles_semantics(self, op, n):
        circuit = QuantumCircuit(n).append(op)
        lowered = decompose_to_cx_and_singles(circuit)
        assert unitaries_equivalent(
            circuit_unitary(lowered), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize("op,n", CONTROLLED_CASES, ids=str)
    def test_cx_and_singles_gate_set(self, op, n):
        circuit = QuantumCircuit(n).append(op)
        for lowered in decompose_to_cx_and_singles(circuit):
            assert len(lowered.targets) == 1
            assert len(lowered.controls) <= 1
            if lowered.controls:
                assert lowered.name == "x"

    @pytest.mark.parametrize("op,n", CONTROLLED_CASES, ids=str)
    def test_zx_lowering_semantics(self, op, n):
        circuit = QuantumCircuit(n).append(op)
        lowered = decompose_for_zx(circuit)
        assert unitaries_equivalent(
            circuit_unitary(lowered), circuit_unitary(circuit)
        )

    def test_toffoli_uses_clifford_t(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        lowered = decompose_to_cx_and_singles(circuit)
        names = {op.name for op in lowered}
        assert names <= {"h", "t", "tdg", "x"}
        assert sum(1 for op in lowered if op.controls) == 6

    def test_layout_metadata_preserved(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        circuit.initial_layout = {0: 1, 1: 0}
        circuit.output_permutation = {2: 2}
        lowered = decompose_to_cx_and_singles(circuit)
        assert lowered.initial_layout == circuit.initial_layout
        assert lowered.output_permutation == circuit.output_permutation


class TestBasisPass:
    @pytest.mark.parametrize("seed", range(4))
    def test_semantics_preserved(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        basis = decompose_to_basis(circuit)
        assert unitaries_equivalent(
            circuit_unitary(basis), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_gate_set_is_u3_cx(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        for op in decompose_to_basis(circuit):
            assert (op.name == "u3" and not op.controls) or (
                op.name == "x" and len(op.controls) == 1
            )

    def test_single_qubit_runs_fused(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0).s(0)
        basis = decompose_to_basis(circuit)
        assert len(basis) == 1

    def test_identity_run_dropped(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(decompose_to_basis(circuit)) == 0


class TestZYZ:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(0, 2 * math.pi),
        st.floats(0, 2 * math.pi),
        st.floats(0, 2 * math.pi),
        st.floats(0, 2 * math.pi),
    )
    def test_roundtrip(self, theta, phi, lam, extra_phase):
        matrix = cmath.exp(1j * extra_phase) * base_matrix(
            "u3", (theta, phi, lam)
        )
        t, p, l, g = zyz_angles(matrix)
        rebuilt = cmath.exp(1j * g) * base_matrix("u3", (t, p, l))
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-9)

    @pytest.mark.parametrize(
        "name", ["id", "x", "y", "z", "h", "s", "t", "sx"]
    )
    def test_named_gates(self, name):
        matrix = base_matrix(name)
        t, p, l, g = zyz_angles(matrix)
        rebuilt = cmath.exp(1j * g) * base_matrix("u3", (t, p, l))
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-9)
