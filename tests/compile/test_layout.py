"""Additional tests for layout selection (`repro.compile.layout`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compile.architectures import (
    grid_architecture,
    line_architecture,
    manhattan_architecture,
)
from repro.compile.layout import greedy_layout, trivial_layout
from tests.conftest import random_circuit


class TestGreedyLayout:
    def test_deterministic(self):
        circuit = random_circuit(5, 25, seed=1)
        device = grid_architecture(3, 3)
        assert greedy_layout(circuit, device) == greedy_layout(circuit, device)

    def test_empty_circuit_places_all_qubits(self):
        placement = greedy_layout(QuantumCircuit(3), line_architecture(5))
        assert sorted(placement) == [0, 1, 2]
        assert len(set(placement.values())) == 3

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            greedy_layout(QuantumCircuit(10), line_architecture(5))

    def test_heavy_interaction_pair_adjacent(self):
        circuit = QuantumCircuit(4)
        for _ in range(10):
            circuit.cx(1, 3)
        circuit.cx(0, 2)
        device = manhattan_architecture()
        placement = greedy_layout(circuit, device)
        assert device.distance(placement[1], placement[3]) == 1

    def test_triangle_interaction_on_grid(self):
        """Three mutually interacting qubits land pairwise close."""
        circuit = QuantumCircuit(3)
        for _ in range(5):
            circuit.cx(0, 1).cx(1, 2).cx(0, 2)
        device = grid_architecture(3, 3)
        placement = greedy_layout(circuit, device)
        total = sum(
            device.distance(placement[a], placement[b])
            for a, b in ((0, 1), (1, 2), (0, 2))
        )
        assert total <= 4  # a tight triangle on the grid

    def test_seed_qubit_is_well_connected(self):
        """The busiest logical qubit goes to a high-degree physical one."""
        circuit = QuantumCircuit(3)
        for _ in range(4):
            circuit.cx(0, 1).cx(0, 2)
        device = line_architecture(5)
        placement = greedy_layout(circuit, device)
        # on a line, high centrality = middle qubits
        assert placement[0] in (1, 2, 3)


class TestTrivialLayout:
    def test_identity(self):
        circuit = QuantumCircuit(4)
        assert trivial_layout(circuit, line_architecture(6)) == {
            0: 0, 1: 1, 2: 2, 3: 3,
        }
