"""Self-tests for the project-invariant AST lint (tools/check_repro.py)."""

import importlib.util
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_repro", _REPO_ROOT / "tools" / "check_repro.py"
)
check_repro = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_repro)


def _run_on(tmp_path: Path, relative: str, source: str):
    """Build a minimal fake tree containing one file and lint it."""
    root = tmp_path
    counters = root / "src" / "repro" / "perf" / "counters.py"
    counters.parent.mkdir(parents=True, exist_ok=True)
    counters.write_text('COUNTER_NAMESPACES = ("analysis", "zx")\n')
    target = root / "src" / "repro" / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return check_repro.run_checks(root)


class TestRealTreeIsClean:
    def test_zero_findings_on_the_repository(self):
        findings = check_repro.run_checks(_REPO_ROOT)
        assert findings == [], [str(f) for f in findings]


class TestDeadlineLoopRule:
    def test_unchecked_loop_in_checker_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo_checker.py",
            "def run(circ, deadline):\n"
            "    total = 0\n"
            "    for op in circ:\n"
            "        total += 1\n"
            "    return total\n",
        )
        assert [f.rule for f in findings] == ["deadline-loop"]

    def test_loop_consulting_deadline_is_clean(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo_checker.py",
            "def run(circ, deadline):\n"
            "    for op in circ:\n"
            "        _check_deadline(deadline)\n"
            "    return 0\n",
        )
        assert findings == []

    def test_functions_without_deadline_are_exempt(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo_checker.py",
            "def helper(circ):\n"
            "    for op in circ:\n"
            "        pass\n",
        )
        assert findings == []

    def test_rule_only_applies_to_hot_paths(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/other_module.py",
            "def run(circ, deadline):\n"
            "    for op in circ:\n"
            "        pass\n",
        )
        assert findings == []

    def test_suppression_with_reason(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo_checker.py",
            "def run(circ, deadline):\n"
            "    # repro: allow(deadline-loop): bounded by gate arity\n"
            "    for op in circ:\n"
            "        pass\n",
        )
        assert findings == []

    def test_wrong_rule_suppression_does_not_apply(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo_checker.py",
            "def run(circ, deadline):\n"
            "    # repro: allow(seeded-rng): wrong rule\n"
            "    for op in circ:\n"
            "        pass\n",
        )
        # The loop stays flagged, and the mismatched suppression is now
        # itself reported as dead.
        assert sorted(f.rule for f in findings) == [
            "deadline-loop",
            "stale-allow",
        ]


class TestSeededRngRule:
    def test_unseeded_random_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/helpers.py",
            "import random\nrng = random.Random()\n",
        )
        assert [f.rule for f in findings] == ["seeded-rng"]

    def test_seeded_random_is_clean(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/helpers.py",
            "import random\nrng = random.Random(42)\n",
        )
        assert findings == []

    def test_np_random_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/kernels.py",
            "import numpy as np\nx = np.random.rand(4)\n",
        )
        assert [f.rule for f in findings] == ["seeded-rng"]

    def test_global_random_draw_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "zx/pick.py",
            "import random\nv = random.choice([1, 2])\n",
        )
        assert [f.rule for f in findings] == ["seeded-rng"]

    def test_generator_module_is_exempt(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "fuzz/generator.py",
            "import random\nrng = random.Random()\n",
        )
        assert findings == []


class TestCounterNamespaceRule:
    def test_unregistered_namespace_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo.py",
            "def f(counters):\n"
            "    counters.count('bogus.thing')\n",
        )
        assert [f.rule for f in findings] == ["counter-namespace"]

    def test_registered_namespace_is_clean(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo.py",
            "def f(counters, perf):\n"
            "    counters.count('zx.rounds', 3)\n"
            "    perf.count('analysis.runs')\n",
        )
        assert findings == []

    def test_unrelated_count_calls_are_ignored(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/demo.py",
            "def f(source):\n"
            "    return source.count('x') + [1].count(1)\n",
        )
        assert findings == []


class TestNoWallclockRule:
    def test_time_time_in_pure_package_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/clocky.py",
            "import time\nstart = time.time()\n",
        )
        assert [f.rule for f in findings] == ["no-wallclock"]

    def test_perf_counter_is_allowed(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "analysis/timed.py",
            "import time\nstart = time.perf_counter()\n",
        )
        assert findings == []

    def test_harness_layer_is_exempt(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "harness/clocky.py",
            "import time\nstart = time.time()\n",
        )
        assert findings == []


class TestNoForkRule:
    def test_os_fork_outside_harness_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/sneaky.py",
            "import os\npid = os.fork()\n",
        )
        assert [f.rule for f in findings] == ["no-fork"]

    def test_multiprocessing_process_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "fuzz/spawny.py",
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=print)\n",
        )
        assert [f.rule for f in findings] == ["no-fork"]

    def test_aliased_context_process_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/ctxy.py",
            "import multiprocessing as mp\n"
            "ctx = mp.get_context('fork')\n"
            "p = ctx.Process(target=print)\n",
        )
        assert "no-fork" in [f.rule for f in findings]

    def test_harness_layer_is_exempt(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "harness/forky.py",
            "import os\npid = os.fork()\n",
        )
        assert findings == []

    def test_suppression_with_reason(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "ec/sneaky.py",
            "import os\n"
            "# repro: allow(no-fork): demonstrating the rule\n"
            "pid = os.fork()\n",
        )
        assert findings == []


class TestNoObjectDDRule:
    def test_object_allocation_in_array_module_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/array_demo.py",
            "from repro.dd.node import MNode\n"
            "node = MNode(0, ())\n",
        )
        assert [f.rule for f in findings] == ["no-object-dd"]

    def test_dotted_edge_constructor_is_flagged(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/array_demo.py",
            "from repro.dd import node\n"
            "edge = node.VEdge(None, 0j)\n",
        )
        assert [f.rule for f in findings] == ["no-object-dd"]

    def test_rule_only_applies_to_array_modules(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/package_demo.py",
            "from repro.dd.node import MNode\n"
            "node = MNode(0, ())\n",
        )
        assert findings == []

    def test_handle_arithmetic_is_clean(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/array_demo.py",
            "def pack(handle, wid):\n"
            "    return (handle << 32) | wid\n",
        )
        assert findings == []

    def test_suppression_with_reason(self, tmp_path):
        findings = _run_on(
            tmp_path,
            "dd/array_demo.py",
            "from repro.dd.node import VEdge\n"
            "# repro: allow(no-object-dd): legacy-interop shim\n"
            "edge = VEdge(None, 1 + 0j)\n",
        )
        assert findings == []


class TestCli:
    def test_main_exit_codes(self, tmp_path, capsys):
        counters = tmp_path / "src" / "repro" / "perf" / "counters.py"
        counters.parent.mkdir(parents=True)
        counters.write_text('COUNTER_NAMESPACES = ("zx",)\n')
        clean = check_repro.main(["--root", str(tmp_path)])
        assert clean == 0
        bad = tmp_path / "src" / "repro" / "dd" / "clocky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstart = time.time()\n")
        dirty = check_repro.main(["--root", str(tmp_path)])
        assert dirty == 1
        out = capsys.readouterr().out
        assert "no-wallclock" in out
