"""Smoke tests for the example scripts.

Importing each example executes its imports and definitions (every script
guards execution behind ``__main__``), catching bit-rot without paying the
full runtime; the cheapest example additionally runs end to end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLE_FILES}
        assert "quickstart.py" in names
        assert len(names) >= 3  # the deliverable floor

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=lambda p: p.stem
    )
    def test_example_imports_cleanly(self, path):
        module = _load(path)
        assert hasattr(module, "main")
        assert module.__doc__  # every example documents itself

    def test_quickstart_runs_end_to_end(self, capsys):
        module = _load(EXAMPLES_DIR / "quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "verify(ghz, compiled)" in out
        assert "not_equivalent" in out
