"""Tests for the incremental worklist engine (`repro.zx.worklist`).

The engine shares every rule step and match predicate with the legacy
rescan drivers — these tests pin down the contract that only the
*scheduling* differs: on random Clifford+T verification instances
(equivalent pairs, one-gate-missing pairs, flipped-CNOT pairs) both
engines must reach final diagrams with equal spider and edge counts
that are tensor-proportional, and the :class:`DirtyTracker` candidate
indexes must always mirror the live diagram.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.circuit import QuantumCircuit
from repro.zx import (
    circuit_to_zx,
    diagram_to_matrix,
    diagrams_proportional,
    full_reduce,
    to_graph_like,
)
from repro.zx.diagram import EdgeType, VertexType
from repro.zx.worklist import RULES, DirtyTracker
from tests.conftest import random_circuit


def _composed(circuit1, circuit2):
    return circuit_to_zx(circuit1).adjoint().compose(circuit_to_zx(circuit2))


def _reduce_both(circuit1, circuit2):
    """Run both engines on the same composed pair; return the diagrams."""
    legacy = _composed(circuit1, circuit2)
    incremental = legacy.copy()
    full_reduce(legacy, incremental=False)
    full_reduce(incremental, incremental=True)
    return legacy, incremental


def _variant(circuit, kind, seed):
    if kind == "equivalent":
        return circuit
    if kind == "gate_missing":
        return remove_random_gate(circuit, seed=seed)
    if kind == "flipped_cnot":
        return flip_random_cnot(circuit, seed=seed)
    raise ValueError(kind)


class TestEngineAgreement:
    """Equal final sizes on random Clifford+T verification instances."""

    @pytest.mark.parametrize("kind", [
        "equivalent", "gate_missing", "flipped_cnot",
    ])
    @pytest.mark.parametrize("num_qubits", [4, 6])
    @pytest.mark.parametrize("seed", range(3))
    def test_equal_final_counts(self, kind, num_qubits, seed):
        circuit = random_circuit(
            num_qubits, 6 * num_qubits, seed=seed, gate_set="clifford_t"
        )
        other = _variant(circuit, kind, seed)
        legacy, incremental = _reduce_both(circuit, other)
        assert legacy.num_spiders == incremental.num_spiders
        assert legacy.num_edges == incremental.num_edges
        if kind == "equivalent":
            assert incremental.is_identity_diagram()

    @pytest.mark.parametrize("kind", [
        "equivalent", "gate_missing", "flipped_cnot",
    ])
    @pytest.mark.parametrize("seed", range(3))
    def test_tensor_proportional(self, kind, seed):
        """At 3 qubits the dense semantics are cheap enough to compare."""
        circuit = random_circuit(3, 18, seed=seed, gate_set="clifford_t")
        other = _variant(circuit, kind, seed)
        legacy, incremental = _reduce_both(circuit, other)
        assert legacy.num_spiders == incremental.num_spiders
        assert diagrams_proportional(
            diagram_to_matrix(legacy), diagram_to_matrix(incremental)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equal_counts_property(self, seed):
        circuit = random_circuit(4, 24, seed=seed, gate_set="clifford_t")
        legacy, incremental = _reduce_both(circuit, circuit)
        assert legacy.num_spiders == incremental.num_spiders
        assert legacy.num_edges == incremental.num_edges

    def test_incremental_preserves_semantics_vs_input(self):
        circuit = random_circuit(3, 20, seed=11, gate_set="clifford_t")
        diagram = _composed(circuit, circuit)
        before = diagram_to_matrix(diagram)
        full_reduce(diagram, incremental=True)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_tracker_detached_after_reduce(self):
        """full_reduce must not leave its tracker attached (copy/re-reduce)."""
        circuit = random_circuit(3, 10, seed=0, gate_set="clifford_t")
        diagram = _composed(circuit, circuit)
        full_reduce(diagram, incremental=True)
        assert diagram._tracker is None
        # a second reduction attaches a fresh tracker without complaint
        assert full_reduce(diagram, incremental=True) == 0


def _recomputed_indexes(diagram):
    """Phase indexes rebuilt from scratch — the tracker's invariant."""
    pauli, clifford = set(), set()
    for vertex in diagram.vertices():
        if diagram.vertex_type(vertex) is not VertexType.Z:
            continue
        phase = diagram.phase(vertex)
        if phase == 0 or phase == 1:
            pauli.add(vertex)
        elif phase == Fraction(1, 2) or phase == Fraction(3, 2):
            clifford.add(vertex)
    return pauli, clifford


class TestDirtyTracker:
    def _tracked_diagram(self, seed=0):
        circuit = random_circuit(3, 15, seed=seed, gate_set="clifford_t")
        diagram = to_graph_like(_composed(circuit, circuit))
        tracker = DirtyTracker(diagram)
        diagram.attach_tracker(tracker)
        return diagram, tracker

    def test_phase_indexes_mirror_diagram(self):
        diagram, tracker = self._tracked_diagram()
        pauli, clifford = _recomputed_indexes(diagram)
        assert tracker.pauli_spiders == pauli
        assert tracker.clifford_spiders == clifford

    def test_phase_indexes_track_mutations(self):
        diagram, tracker = self._tracked_diagram()
        spiders = [
            v for v in diagram.vertices() if not diagram.is_boundary(v)
        ]
        diagram.set_phase(spiders[0], Fraction(1, 2))
        diagram.set_phase(spiders[1], Fraction(1, 4))
        diagram.set_phase(spiders[2], Fraction(1))
        diagram.remove_vertex(spiders[3])
        vertex = diagram.add_vertex(VertexType.Z, Fraction(3, 2))
        diagram.connect(vertex, spiders[0], EdgeType.HADAMARD)
        pauli, clifford = _recomputed_indexes(diagram)
        assert tracker.pauli_spiders == pauli
        assert tracker.clifford_spiders == clifford

    def test_mutations_dirty_every_rule(self):
        diagram, tracker = self._tracked_diagram()
        for rule in RULES:
            tracker.drain(rule)
            assert not tracker.pending(rule)
        spiders = [
            v for v in diagram.vertices() if not diagram.is_boundary(v)
        ]
        diagram.add_to_phase(spiders[0], Fraction(1, 2))
        for rule in RULES:
            assert tracker.pending(rule)

    def test_drain_includes_neighbors_of_dirty(self):
        diagram, tracker = self._tracked_diagram()
        for rule in RULES:
            tracker.drain(rule)
        spiders = [
            v for v in diagram.vertices() if not diagram.is_boundary(v)
        ]
        diagram.set_phase(spiders[0], Fraction(1, 4))
        candidates = tracker.drain("lcomp")
        assert spiders[0] in candidates
        assert set(diagram.neighbor_view(spiders[0])) <= set(candidates)

    def test_removed_vertex_dirties_former_neighbors(self):
        diagram, tracker = self._tracked_diagram()
        for rule in RULES:
            tracker.drain(rule)
        victim = next(
            v for v in diagram.vertices()
            if not diagram.is_boundary(v) and diagram.degree(v) > 0
        )
        former_neighbors = set(diagram.neighbor_view(victim))
        diagram.remove_vertex(victim)
        candidates = set(tracker.drain("id"))
        assert victim not in candidates
        assert former_neighbors <= candidates

    def test_single_tracker_enforced(self):
        diagram, tracker = self._tracked_diagram()
        with pytest.raises(ValueError):
            diagram.attach_tracker(DirtyTracker(diagram))
        diagram.detach_tracker()
        diagram.attach_tracker(DirtyTracker(diagram))


class TestEngineAgreementLargerCircuit:
    def test_mixed_gate_set_agreement(self):
        """Non-Clifford phases exercise the gadget machinery in both."""
        circuit = random_circuit(4, 30, seed=3, gate_set="mixed")
        legacy, incremental = _reduce_both(circuit, circuit)
        assert legacy.num_spiders == incremental.num_spiders
        assert legacy.num_edges == incremental.num_edges
        assert incremental.is_identity_diagram()

    def test_unequal_pair_stays_unequal(self):
        circuit = random_circuit(4, 30, seed=5, gate_set="clifford_t")
        broken_ops = list(circuit.operations)
        del broken_ops[len(broken_ops) // 2]
        broken = QuantumCircuit(4, operations=broken_ops)
        legacy, incremental = _reduce_both(circuit, broken)
        assert legacy.num_spiders == incremental.num_spiders
        assert not incremental.is_identity_diagram()
