"""Unit tests for ZX phase arithmetic (`repro.zx.phase`)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.zx.phase import (
    add_phases,
    is_clifford_phase,
    is_pauli_phase,
    is_proper_clifford_phase,
    negate_phase,
    normalize_phase,
    phase_to_radians,
    radians_to_phase,
)


class TestNormalization:
    def test_fraction_mod_two(self):
        assert normalize_phase(Fraction(5, 2)) == Fraction(1, 2)
        assert normalize_phase(Fraction(-1, 4)) == Fraction(7, 4)

    def test_int_becomes_fraction(self):
        assert normalize_phase(3) == Fraction(1)

    def test_float_snaps_to_dyadic(self):
        assert normalize_phase(0.25) == Fraction(1, 4)
        assert normalize_phase(0.5 + 1e-12) == Fraction(1, 2)

    def test_irrational_float_stays_float(self):
        value = 0.1234567891234
        normalized = normalize_phase(value)
        assert isinstance(normalized, float)
        assert normalized == pytest.approx(value)

    def test_radians_roundtrip(self):
        assert phase_to_radians(Fraction(1, 2)) == pytest.approx(math.pi / 2)
        assert radians_to_phase(math.pi / 4) == Fraction(1, 4)


class TestPredicates:
    def test_pauli(self):
        assert is_pauli_phase(Fraction(0))
        assert is_pauli_phase(Fraction(1))
        assert is_pauli_phase(Fraction(3))  # normalizes to 1
        assert not is_pauli_phase(Fraction(1, 2))

    def test_proper_clifford(self):
        assert is_proper_clifford_phase(Fraction(1, 2))
        assert is_proper_clifford_phase(Fraction(-1, 2))
        assert not is_proper_clifford_phase(Fraction(1))
        assert not is_proper_clifford_phase(Fraction(1, 4))

    def test_clifford(self):
        for k in range(4):
            assert is_clifford_phase(Fraction(k, 2))
        assert not is_clifford_phase(Fraction(1, 4))
        assert not is_clifford_phase(0.123)


class TestArithmeticProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.fractions(min_value=-4, max_value=4, max_denominator=64),
        st.fractions(min_value=-4, max_value=4, max_denominator=64),
    )
    def test_addition_commutative(self, a, b):
        assert add_phases(a, b) == add_phases(b, a)

    @settings(max_examples=100, deadline=None)
    @given(st.fractions(min_value=-4, max_value=4, max_denominator=64))
    def test_negation_is_inverse(self, a):
        assert add_phases(a, negate_phase(a)) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.floats(-20.0, 20.0))
    def test_float_normalization_in_range(self, value):
        normalized = normalize_phase(value)
        assert 0 <= float(normalized) < 2
