"""Tests for circuit -> ZX conversion against dense semantics."""

import pytest

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.zx import circuit_to_zx, diagram_to_matrix, diagrams_proportional
from tests.conftest import random_circuit

SINGLE_GATES = [
    ("h", ()), ("x", ()), ("y", ()), ("z", ()), ("s", ()), ("sdg", ()),
    ("t", ()), ("tdg", ()), ("sx", ()), ("sxdg", ()), ("id", ()),
    ("rx", (0.7,)), ("ry", (0.7,)), ("rz", (0.7,)), ("p", (0.7,)),
    ("u2", (0.3, 1.1)), ("u3", (0.3, 1.1, 2.2)),
]


class TestSingleQubitGates:
    @pytest.mark.parametrize("name,params", SINGLE_GATES, ids=lambda p: str(p))
    def test_matches_unitary(self, name, params):
        circuit = QuantumCircuit(1)
        circuit.add(name, [0], params=params)
        diagram = circuit_to_zx(circuit)
        assert diagrams_proportional(
            diagram_to_matrix(diagram), circuit_unitary(circuit)
        )

    def test_hadamard_alone_becomes_boundary_edge(self):
        circuit = QuantumCircuit(1).h(0)
        diagram = circuit_to_zx(circuit)
        assert diagram.num_spiders == 0  # realized as an H boundary edge


TWO_QUBIT_GATES = [
    lambda c: c.cx(0, 1),
    lambda c: c.cx(1, 0),
    lambda c: c.cz(0, 1),
    lambda c: c.swap(0, 1),
    lambda c: c.iswap(0, 1),
    lambda c: c.rzz(0.9, 0, 1),
    lambda c: c.rxx(0.9, 0, 1),
    lambda c: c.cp(0.7, 0, 1),
    lambda c: c.crz(0.7, 0, 1),
    lambda c: c.cry(0.7, 0, 1),
    lambda c: c.ch(0, 1),
    lambda c: c.cy(0, 1),
]


class TestMultiQubitGates:
    @pytest.mark.parametrize("builder", TWO_QUBIT_GATES)
    def test_two_qubit_matches_unitary(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        diagram = circuit_to_zx(circuit)
        assert diagrams_proportional(
            diagram_to_matrix(diagram), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.ccx(0, 1, 2),
            lambda c: c.ccz(0, 1, 2),
            lambda c: c.cswap(0, 1, 2),
            lambda c: c.mcp(0.8, [0, 1], 2),
        ],
    )
    def test_three_qubit_matches_unitary(self, builder):
        circuit = QuantumCircuit(3)
        builder(circuit)
        diagram = circuit_to_zx(circuit)
        assert diagrams_proportional(
            diagram_to_matrix(diagram), circuit_unitary(circuit)
        )

    def test_swap_is_pure_rewiring(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        diagram = circuit_to_zx(circuit)
        assert diagram.num_spiders == 0
        assert diagram.wire_permutation() == {0: 1, 1: 0}

    def test_non_native_raises_without_decomposition(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError):
            circuit_to_zx(circuit, decompose=False)


class TestWholeCircuits:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_clifford_t(self, seed):
        circuit = random_circuit(3, 12, seed=seed, gate_set="clifford_t")
        diagram = circuit_to_zx(circuit)
        assert diagrams_proportional(
            diagram_to_matrix(diagram), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_rotations(self, seed):
        circuit = random_circuit(3, 12, seed=seed, gate_set="rotations")
        diagram = circuit_to_zx(circuit)
        assert diagrams_proportional(
            diagram_to_matrix(diagram), circuit_unitary(circuit)
        )

    def test_ghz_diagram_shape(self):
        """Paper Fig. 6a: GHZ yields a small Z/X spider chain."""
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2)
        diagram = circuit_to_zx(circuit)
        assert diagram.num_spiders == 4  # 2 per CNOT
        assert len(diagram.inputs) == 3
        assert len(diagram.outputs) == 3
