"""Tests for the tensor-network evaluator (`repro.zx.tensor`)."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.zx import circuit_to_zx, diagram_to_matrix, diagrams_proportional
from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.tensor import diagram_to_tensor


class TestSpiders:
    def test_z_spider_phase(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.Z, Fraction(1, 2))
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, v)
        d.connect(v, o)
        d.inputs, d.outputs = [i], [o]
        matrix = diagram_to_matrix(d)
        np.testing.assert_allclose(matrix, np.diag([1, 1j]), atol=1e-12)

    def test_x_spider_is_hadamard_conjugated(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.X, Fraction(1))
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, v)
        d.connect(v, o)
        d.inputs, d.outputs = [i], [o]
        matrix = diagram_to_matrix(d)
        np.testing.assert_allclose(
            matrix, np.array([[0, 1], [1, 0]]), atol=1e-12
        )

    def test_hadamard_edge(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, o, EdgeType.HADAMARD)
        d.inputs, d.outputs = [i], [o]
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        np.testing.assert_allclose(diagram_to_matrix(d), h, atol=1e-12)

    def test_state_spider(self):
        """A Z spider with no inputs is a state (|0...0> + e^{ia}|1...1>)."""
        d = ZXDiagram()
        v = d.add_vertex(VertexType.Z, Fraction(1))
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(v, o)
        d.inputs, d.outputs = [], [o]
        vector = diagram_to_matrix(d).reshape(-1)
        np.testing.assert_allclose(vector, [1, -1], atol=1e-12)

    def test_scalar_diagram(self):
        d = ZXDiagram()
        d.add_vertex(VertexType.Z, Fraction(0))  # degree-0 spider, scalar 2
        tensor, legs = diagram_to_tensor(d)
        assert legs == []
        assert tensor == pytest.approx(2.0)


class TestAgainstCircuits:
    def test_cnot_tensor(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        assert diagrams_proportional(
            diagram_to_matrix(circuit_to_zx(circuit)),
            circuit_unitary(circuit),
        )

    def test_qubit_ordering_convention(self):
        """X on qubit 0 must act on the least significant bit."""
        circuit = QuantumCircuit(2).x(0)
        matrix = diagram_to_matrix(circuit_to_zx(circuit))
        expected = np.kron(np.eye(2), np.array([[0, 1], [1, 0]]))
        assert diagrams_proportional(matrix, expected)


class TestProportionality:
    def test_proportional_up_to_scalar(self):
        a = np.eye(4)
        assert diagrams_proportional(a, 3.7j * a)

    def test_not_proportional(self):
        a = np.eye(2)
        b = np.array([[1, 0], [0, -1]])
        assert not diagrams_proportional(a, b)

    def test_shape_mismatch(self):
        assert not diagrams_proportional(np.eye(2), np.eye(4))

    def test_zero_matrices(self):
        assert diagrams_proportional(np.zeros((2, 2)), np.zeros((2, 2)))
        assert not diagrams_proportional(np.zeros((2, 2)), np.eye(2))
