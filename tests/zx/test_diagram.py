"""Unit tests for the ZX-diagram graph structure (`repro.zx.diagram`)."""

from fractions import Fraction

import pytest

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram


def bare_wire() -> ZXDiagram:
    d = ZXDiagram()
    i = d.add_vertex(VertexType.BOUNDARY)
    o = d.add_vertex(VertexType.BOUNDARY)
    d.connect(i, o)
    d.inputs, d.outputs = [i], [o]
    return d


class TestVerticesAndEdges:
    def test_add_remove_vertex(self):
        d = ZXDiagram()
        v = d.add_vertex(VertexType.Z, Fraction(1, 2))
        assert d.num_vertices == 1
        assert d.phase(v) == Fraction(1, 2)
        d.remove_vertex(v)
        assert d.num_vertices == 0

    def test_remove_vertex_clears_edges(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        b = d.add_vertex(VertexType.Z)
        d.connect(a, b)
        d.remove_vertex(a)
        assert d.degree(b) == 0

    def test_duplicate_edge_rejected(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        b = d.add_vertex(VertexType.Z)
        d.connect(a, b)
        with pytest.raises(ValueError):
            d.connect(a, b)

    def test_self_loop_rejected(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        with pytest.raises(ValueError):
            d.connect(a, a)

    def test_edges_iteration(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        b = d.add_vertex(VertexType.X)
        d.connect(a, b, EdgeType.HADAMARD)
        assert list(d.edges()) == [(a, b, EdgeType.HADAMARD)]
        assert d.num_edges == 1

    def test_phase_arithmetic(self):
        d = ZXDiagram()
        v = d.add_vertex(VertexType.Z, Fraction(1, 4))
        d.add_to_phase(v, Fraction(1, 4))
        assert d.phase(v) == Fraction(1, 2)

    def test_num_spiders_excludes_boundaries(self):
        d = bare_wire()
        assert d.num_spiders == 0
        d2 = ZXDiagram()
        d2.add_vertex(VertexType.Z)
        assert d2.num_spiders == 1

    def test_interior(self):
        d = ZXDiagram()
        b = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.Z)
        w = d.add_vertex(VertexType.Z)
        d.connect(b, v)
        d.connect(v, w)
        assert not d.is_interior(v)
        assert d.is_interior(w)


class TestToggleHadamard:
    def test_toggle_creates_and_cancels(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        b = d.add_vertex(VertexType.Z)
        d.toggle_hadamard_edge(a, b)
        assert d.edge_type(a, b) is EdgeType.HADAMARD
        d.toggle_hadamard_edge(a, b)
        assert not d.connected(a, b)

    def test_self_toggle_adds_pi(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        d.toggle_hadamard_edge(a, a)
        assert d.phase(a) == Fraction(1)

    def test_toggle_on_simple_edge_rejected(self):
        d = ZXDiagram()
        a = d.add_vertex(VertexType.Z)
        b = d.add_vertex(VertexType.Z)
        d.connect(a, b, EdgeType.SIMPLE)
        with pytest.raises(ValueError):
            d.toggle_hadamard_edge(a, b)


class TestStructuralOps:
    def test_copy_independent(self):
        d = bare_wire()
        clone = d.copy()
        clone.add_vertex(VertexType.Z)
        assert clone.num_vertices == d.num_vertices + 1

    def test_adjoint_negates_phases_and_swaps_io(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.Z, Fraction(1, 4))
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, v)
        d.connect(v, o)
        d.inputs, d.outputs = [i], [o]
        adj = d.adjoint()
        assert adj.phase(v) == Fraction(7, 4)
        assert adj.inputs == [o]
        assert adj.outputs == [i]

    def test_compose_arity_mismatch_rejected(self):
        d = bare_wire()
        two = ZXDiagram()
        for _ in range(2):
            i = two.add_vertex(VertexType.BOUNDARY)
            o = two.add_vertex(VertexType.BOUNDARY)
            two.connect(i, o)
            two.inputs.append(i)
            two.outputs.append(o)
        with pytest.raises(ValueError):
            d.compose(two)

    def test_compose_bare_wires(self):
        composed = bare_wire().compose(bare_wire())
        # junction spiders are phase-0 Z spiders, removable by id_simp
        from repro.zx.simplify import id_simp

        id_simp(composed)
        assert composed.wire_permutation() == {0: 0}


class TestWirePermutation:
    def test_bare_wire_is_identity(self):
        assert bare_wire().is_identity_diagram()

    def test_crossed_wires(self):
        d = ZXDiagram()
        i0 = d.add_vertex(VertexType.BOUNDARY)
        i1 = d.add_vertex(VertexType.BOUNDARY)
        o0 = d.add_vertex(VertexType.BOUNDARY)
        o1 = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i0, o1)
        d.connect(i1, o0)
        d.inputs, d.outputs = [i0, i1], [o0, o1]
        assert d.wire_permutation() == {0: 1, 1: 0}
        assert not d.is_identity_diagram()

    def test_hadamard_wire_is_not_permutation(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, o, EdgeType.HADAMARD)
        d.inputs, d.outputs = [i], [o]
        assert d.wire_permutation() is None

    def test_leftover_spider_is_not_permutation(self):
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.Z, Fraction(1, 4))
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, v)
        d.connect(v, o)
        d.inputs, d.outputs = [i], [o]
        assert d.wire_permutation() is None
