"""Tests for the graph-like simplification pipeline (`repro.zx.simplify`)."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.zx import (
    circuit_to_zx,
    diagram_to_matrix,
    diagrams_proportional,
    full_reduce,
    to_graph_like,
)
from repro.zx.diagram import EdgeType, VertexType
from repro.zx.simplify import (
    SimplificationTimeout,
    clifford_simp,
    gadget_simp,
    id_simp,
    interior_clifford_simp,
    lcomp_simp,
    pivot_gadget_simp,
    pivot_simp,
)
from tests.conftest import random_circuit


def _assert_graph_like(diagram):
    for u, v, edge_type in diagram.edges():
        u_boundary = diagram.is_boundary(u)
        v_boundary = diagram.is_boundary(v)
        if not u_boundary and not v_boundary:
            assert edge_type is EdgeType.HADAMARD, (u, v)
    for vertex in diagram.vertices():
        assert diagram.vertex_type(vertex) is not VertexType.X


class TestToGraphLike:
    @pytest.mark.parametrize("seed", range(5))
    def test_invariant_and_semantics(self, seed):
        circuit = random_circuit(3, 15, seed=seed)
        diagram = circuit_to_zx(circuit)
        before = diagram_to_matrix(diagram)
        to_graph_like(diagram)
        _assert_graph_like(diagram)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_x_spiders_recolored(self):
        diagram = circuit_to_zx(QuantumCircuit(2).cx(0, 1))
        to_graph_like(diagram)
        for vertex in diagram.vertices():
            assert diagram.vertex_type(vertex) is not VertexType.X


class TestIndividualPasses:
    @pytest.mark.parametrize(
        "simp",
        [id_simp, pivot_simp, lcomp_simp, pivot_gadget_simp],
        ids=lambda f: f.__name__,
    )
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_pass_preserves_semantics(self, simp, seed):
        circuit = random_circuit(3, 15, seed=seed)
        diagram = circuit_to_zx(circuit)
        to_graph_like(diagram)
        before = diagram_to_matrix(diagram)
        simp(diagram)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_gadget_simp_merges_equal_support(self):
        # two rzz phase gadgets on the same pair of qubits
        circuit = QuantumCircuit(2).rzz(0.4, 0, 1).h(0).h(0).rzz(0.3, 0, 1)
        diagram = circuit_to_zx(circuit)
        before = diagram_to_matrix(diagram)
        to_graph_like(diagram)
        gadget_simp(diagram)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)


class TestFullReduce:
    @pytest.mark.parametrize("gate_set", ["clifford_t", "rotations", "mixed"])
    @pytest.mark.parametrize("seed", range(3))
    def test_preserves_semantics(self, gate_set, seed):
        circuit = random_circuit(3, 15, seed=seed, gate_set=gate_set)
        diagram = circuit_to_zx(circuit)
        before = diagram_to_matrix(diagram)
        full_reduce(diagram)
        _assert_graph_like(diagram)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_clifford_circuit_reduces_fully(self):
        """Clifford ruleset completeness: G†G becomes bare wires."""
        circuit = random_circuit(4, 30, seed=9, gate_set="clifford_t")
        # strip T gates to stay Clifford
        clifford = QuantumCircuit(4)
        for op in circuit:
            if op.name not in ("t", "tdg"):
                clifford.append(op)
        diagram = (
            circuit_to_zx(clifford).adjoint().compose(circuit_to_zx(clifford))
        )
        full_reduce(diagram)
        assert diagram.is_identity_diagram()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_self_inverse_reduces_to_identity(self, seed):
        circuit = random_circuit(3, 20, seed=seed, gate_set="mixed")
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
        )
        full_reduce(diagram)
        assert diagram.is_identity_diagram()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_spider_count_non_increasing(self, seed):
        """The paper's key robustness claim for the ZX paradigm."""
        circuit = random_circuit(3, 20, seed=seed, gate_set="rotations")
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
        )
        initial = diagram.num_spiders
        full_reduce(diagram)
        assert diagram.num_spiders <= initial

    def test_deadline_raises(self):
        circuit = random_circuit(5, 200, seed=1, gate_set="mixed")
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
        )
        with pytest.raises(SimplificationTimeout):
            full_reduce(diagram, deadline=time.monotonic() - 1.0)

    def test_legacy_deadline_raises(self):
        circuit = random_circuit(5, 200, seed=1, gate_set="mixed")
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
        )
        with pytest.raises(SimplificationTimeout):
            full_reduce(
                diagram, deadline=time.monotonic() - 1.0, incremental=False
            )

    def test_gadget_simp_deadline_raises(self):
        """gadget_simp honours the deadline even with no fusable gadget."""
        circuit = QuantumCircuit(2).rzz(0.4, 0, 1).h(0).h(0).rzz(0.3, 0, 1)
        diagram = to_graph_like(circuit_to_zx(circuit))
        with pytest.raises(SimplificationTimeout):
            gadget_simp(diagram, deadline=time.monotonic() - 1.0)

    def test_error_injected_does_not_reduce_to_identity(self):
        circuit = random_circuit(4, 30, seed=5, gate_set="mixed")
        broken_ops = list(circuit.operations)
        del broken_ops[len(broken_ops) // 2]
        broken = QuantumCircuit(4, operations=broken_ops)
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(broken))
        )
        full_reduce(diagram)
        assert not diagram.is_identity_diagram()


class TestCliffordSimp:
    def test_reports_rewrite_counts(self):
        circuit = random_circuit(3, 20, seed=2, gate_set="clifford_t")
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
        )
        applied = interior_clifford_simp(diagram)
        assert applied > 0
        # running again finds nothing new
        assert clifford_simp(diagram) >= 0
