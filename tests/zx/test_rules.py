"""Soundness of the rewrite rules against tensor semantics (paper Fig. 5).

Every primitive rule is applied to concrete diagrams and the tensor before
and after are compared up to a global scalar — the reproduction of the
paper's axiom figure as executable checks.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.zx import circuit_to_zx, diagram_to_matrix, diagrams_proportional
from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.rules import color_change, fuse, local_complement, pivot, remove_identity
from repro.zx.simplify import (
    _lcomp_applicable,
    _pivot_applicable,
    to_graph_like,
)
from tests.conftest import random_circuit


def two_spider_chain(phase_a, phase_b):
    """in - Z(a) - Z(b) - out, simple edges."""
    d = ZXDiagram()
    i = d.add_vertex(VertexType.BOUNDARY)
    a = d.add_vertex(VertexType.Z, phase_a)
    b = d.add_vertex(VertexType.Z, phase_b)
    o = d.add_vertex(VertexType.BOUNDARY)
    d.connect(i, a)
    d.connect(a, b)
    d.connect(b, o)
    d.inputs, d.outputs = [i], [o]
    return d, a, b


class TestFusion:
    @settings(max_examples=40, deadline=None)
    @given(
        st.fractions(min_value=0, max_value=2, max_denominator=8),
        st.fractions(min_value=0, max_value=2, max_denominator=8),
    )
    def test_fusion_rule_f(self, pa, pb):
        diagram, a, b = two_spider_chain(pa, pb)
        before = diagram_to_matrix(diagram)
        fuse(diagram, a, b)
        assert diagram.phase(a) == (pa + pb) % 2
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_fusion_requires_simple_edge(self):
        diagram, a, b = two_spider_chain(0, 0)
        diagram.set_edge_type(a, b, EdgeType.HADAMARD)
        with pytest.raises(ValueError):
            fuse(diagram, a, b)

    def test_fusion_requires_z_spiders(self):
        diagram, a, b = two_spider_chain(0, 0)
        diagram.set_vertex_type(b, VertexType.X)
        with pytest.raises(ValueError):
            fuse(diagram, a, b)


class TestIdentityRule:
    def test_identity_rule_id(self):
        diagram, a, b = two_spider_chain(Fraction(0), Fraction(1, 4))
        before = diagram_to_matrix(diagram)
        remove_identity(diagram, a)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_identity_rule_combines_hadamards(self):
        # in -H- Z(0) -H- out reduces to a plain wire
        d = ZXDiagram()
        i = d.add_vertex(VertexType.BOUNDARY)
        v = d.add_vertex(VertexType.Z)
        o = d.add_vertex(VertexType.BOUNDARY)
        d.connect(i, v, EdgeType.HADAMARD)
        d.connect(v, o, EdgeType.HADAMARD)
        d.inputs, d.outputs = [i], [o]
        remove_identity(d, v)
        assert d.is_identity_diagram()

    def test_identity_rule_rejects_phase(self):
        diagram, a, b = two_spider_chain(Fraction(1, 2), Fraction(0))
        with pytest.raises(ValueError):
            remove_identity(diagram, a)


class TestColorChange:
    @pytest.mark.parametrize("seed", range(3))
    def test_color_change_rule_h(self, seed):
        circuit = random_circuit(2, 8, seed=seed, gate_set="clifford_t")
        diagram = circuit_to_zx(circuit)
        before = diagram_to_matrix(diagram)
        for vertex in list(diagram.vertices()):
            if not diagram.is_boundary(vertex):
                color_change(diagram, vertex)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_double_color_change_is_identity(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        diagram = circuit_to_zx(circuit)
        spiders = [v for v in diagram.vertices() if not diagram.is_boundary(v)]
        snapshot = [
            (diagram.vertex_type(v), diagram.phase(v)) for v in spiders
        ]
        for v in spiders:
            color_change(diagram, v)
            color_change(diagram, v)
        assert snapshot == [
            (diagram.vertex_type(v), diagram.phase(v)) for v in spiders
        ]

    def test_boundary_recolor_rejected(self):
        diagram = circuit_to_zx(QuantumCircuit(1).h(0))
        with pytest.raises(ValueError):
            color_change(diagram, diagram.inputs[0])


def _graph_like_ec_diagram(seed):
    """A graph-like diagram with interior spiders (from G†G of a circuit)."""
    circuit = random_circuit(3, 14, seed=seed, gate_set="clifford_t")
    diagram = circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(circuit))
    to_graph_like(diagram)
    return diagram


class TestLocalComplementation:
    @pytest.mark.parametrize("seed", range(8))
    def test_lcomp_preserves_semantics(self, seed):
        diagram = _graph_like_ec_diagram(seed)
        candidates = [
            v for v in diagram.vertices() if _lcomp_applicable(diagram, v)
        ]
        if not candidates:
            pytest.skip("no lcomp match in this diagram")
        before = diagram_to_matrix(diagram)
        local_complement(diagram, candidates[0])
        assert diagrams_proportional(diagram_to_matrix(diagram), before)


class TestPivot:
    @pytest.mark.parametrize("seed", range(8))
    def test_pivot_preserves_semantics(self, seed):
        diagram = _graph_like_ec_diagram(seed)
        match = None
        for u, v, edge_type in diagram.edges():
            if edge_type is EdgeType.HADAMARD and _pivot_applicable(
                diagram, u, v
            ):
                match = (u, v)
                break
        if match is None:
            pytest.skip("no pivot match in this diagram")
        before = diagram_to_matrix(diagram)
        pivot(diagram, *match)
        assert diagrams_proportional(diagram_to_matrix(diagram), before)


def _wired_spider(d, phase=Fraction(0)):
    """A Z spider attached to fresh input and output boundaries."""
    i = d.add_vertex(VertexType.BOUNDARY)
    v = d.add_vertex(VertexType.Z, phase)
    o = d.add_vertex(VertexType.BOUNDARY)
    d.connect(i, v)
    d.connect(v, o)
    d.inputs.append(i)
    d.outputs.append(o)
    return v


class TestLocalComplementationDeterministic:
    @pytest.mark.parametrize("center_phase", [Fraction(1, 2), Fraction(3, 2)])
    @pytest.mark.parametrize(
        "neighbor_phases",
        [
            (Fraction(0), Fraction(0), Fraction(0)),
            (Fraction(1, 4), Fraction(1), Fraction(7, 4)),
        ],
    )
    def test_explicit_lcomp(self, center_phase, neighbor_phases):
        """A hand-built interior ±pi/2 spider with three Z neighbors."""
        d = ZXDiagram()
        neighbors = [_wired_spider(d, p) for p in neighbor_phases]
        center = d.add_vertex(VertexType.Z, center_phase)
        for n in neighbors:
            d.connect(center, n, EdgeType.HADAMARD)
        assert _lcomp_applicable(d, center)
        before = diagram_to_matrix(d)
        local_complement(d, center)
        assert diagrams_proportional(diagram_to_matrix(d), before)
        # complementation fully connected the (previously independent) trio
        for a in neighbors:
            for b in neighbors:
                if a != b:
                    assert d.connected(a, b)


class TestPivotDeterministic:
    @pytest.mark.parametrize("phase_u", [Fraction(0), Fraction(1)])
    @pytest.mark.parametrize("phase_v", [Fraction(0), Fraction(1)])
    def test_explicit_pivot(self, phase_u, phase_v):
        """A hand-built interior Pauli pair with exclusive + common
        neighbors."""
        d = ZXDiagram()
        only_u = _wired_spider(d, Fraction(1, 4))
        only_v = _wired_spider(d, Fraction(0))
        common = _wired_spider(d, Fraction(1))
        u = d.add_vertex(VertexType.Z, phase_u)
        v = d.add_vertex(VertexType.Z, phase_v)
        d.connect(u, v, EdgeType.HADAMARD)
        d.connect(u, only_u, EdgeType.HADAMARD)
        d.connect(v, only_v, EdgeType.HADAMARD)
        d.connect(u, common, EdgeType.HADAMARD)
        d.connect(v, common, EdgeType.HADAMARD)
        assert _pivot_applicable(d, u, v)
        before = diagram_to_matrix(d)
        pivot(d, u, v)
        assert diagrams_proportional(diagram_to_matrix(d), before)
        # the exclusive neighbors are now joined, u and v are gone
        assert d.connected(only_u, only_v)
        assert d.num_spiders == 3
