"""Tests for ZX circuit extraction and the ZX optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.ec import Configuration, EquivalenceCheckingManager, stabilizer_check
from repro.zx import circuit_to_zx, diagrams_proportional, full_reduce
from repro.zx.extract import ExtractionError, extract_circuit
from repro.zx.optimize import zx_optimize
from tests.stab.test_tableau import clifford_circuit


def roundtrip(circuit):
    diagram = circuit_to_zx(circuit)
    full_reduce(diagram)
    return extract_circuit(diagram)


class TestExtraction:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.h(0),
            lambda c: c.s(0),
            lambda c: c.x(0),
            lambda c: c.rz(0.37, 0),
        ],
        ids=["h", "s", "x", "rz"],
    )
    def test_single_qubit_gates(self, builder):
        circuit = QuantumCircuit(1)
        builder(circuit)
        extracted = roundtrip(circuit)
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.cx(0, 1),
            lambda c: c.cz(0, 1),
            lambda c: c.swap(0, 1),
            lambda c: c.h(0).cx(0, 1),
            lambda c: c.cx(0, 1).cx(1, 0),
        ],
        ids=["cx", "cz", "swap", "bell", "double_cx"],
    )
    def test_two_qubit_circuits(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        extracted = roundtrip(circuit)
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    def test_identity_extracts_to_empty(self):
        circuit = QuantumCircuit(3)
        extracted = roundtrip(circuit)
        assert len(extracted) == 0

    def test_pure_permutation(self):
        circuit = QuantumCircuit(3).swap(0, 1).swap(1, 2)
        extracted = roundtrip(circuit)
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_random_clifford_roundtrip(self, seed):
        """Three engines agree: ZX extraction validated by the tableau."""
        circuit = clifford_circuit(4, 25, seed=seed)
        extracted = roundtrip(circuit)
        result = stabilizer_check(circuit, extracted)
        if result.considered_equivalent:
            return
        # extracted rz(k*pi/2) phases are Clifford; if the tableau could
        # not digest them, fall back to the dense ground truth
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_clifford_roundtrip_property(self, seed):
        circuit = clifford_circuit(3, 18, seed=seed)
        extracted = roundtrip(circuit)
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.rzz(0.3, 0, 1).h(0).rzz(0.7, 0, 1),
            lambda c: c.t(0).cx(0, 1).t(1).cx(1, 0).rz(0.9, 0),
        ],
        ids=["double_gadget", "t_heavy"],
    )
    def test_gadget_diagrams_extract_correctly(self, builder):
        """Simple phase gadgets pass through the frontier machinery: the
        axis becomes an ordinary back-neighbour column and its phase leaf
        extracts once the axis reaches the frontier."""
        circuit = QuantumCircuit(2)
        builder(circuit)
        diagram = circuit_to_zx(circuit)
        full_reduce(diagram)
        extracted = extract_circuit(diagram)
        assert diagrams_proportional(
            circuit_unitary(extracted), circuit_unitary(circuit)
        )

    def test_non_unitary_arity_rejected(self):
        from repro.zx.diagram import VertexType, ZXDiagram

        diagram = ZXDiagram()
        out = diagram.add_vertex(VertexType.BOUNDARY)
        spider = diagram.add_vertex(VertexType.Z)
        diagram.connect(spider, out)
        diagram.outputs = [out]
        with pytest.raises(ExtractionError):
            extract_circuit(diagram)


class TestZXOptimize:
    @pytest.mark.parametrize("seed", range(5))
    def test_clifford_optimization_preserves_semantics(self, seed):
        circuit = clifford_circuit(4, 30, seed=seed)
        optimized, extracted = zx_optimize(circuit)
        assert extracted
        result = EquivalenceCheckingManager(
            circuit, optimized, Configuration(strategy="alternating")
        ).run()
        assert result.considered_equivalent

    def test_clifford_optimization_reduces_gates(self):
        """A redundant Clifford circuit shrinks through the round trip."""
        circuit = QuantumCircuit(2)
        for _ in range(6):
            circuit.h(0).h(0).cz(0, 1).cz(0, 1).s(0).sdg(0)
        optimized, extracted = zx_optimize(circuit)
        assert extracted
        assert len(optimized) < len(circuit)

    def test_fallback_on_gadgets(self):
        circuit = QuantumCircuit(2).rzz(0.3, 0, 1).h(0).rzz(0.7, 0, 1)
        optimized, extracted = zx_optimize(circuit)
        if not extracted:
            # fallback returns an (optimized copy of the) input
            result = EquivalenceCheckingManager(
                circuit, optimized, Configuration(strategy="alternating")
            ).run()
            assert result.considered_equivalent

    def test_optimized_pair_checks_with_both_paradigms(self):
        """The new optimizer feeds the case study's second use-case."""
        circuit = clifford_circuit(4, 30, seed=11)
        optimized, extracted = zx_optimize(circuit)
        assert extracted
        for strategy in ("combined", "zx", "stabilizer"):
            result = EquivalenceCheckingManager(
                circuit, optimized, Configuration(strategy=strategy, seed=0)
            ).run()
            assert result.considered_equivalent, strategy
