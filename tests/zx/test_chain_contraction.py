"""Tests for the numerical chain-contraction extension
(`repro.zx.simplify.contract_unitary_chains`)."""

import math
from fractions import Fraction

import pytest

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.zx import circuit_to_zx, diagram_to_matrix, diagrams_proportional
from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.simplify import contract_unitary_chains, full_reduce


def wire_with_phases(phases_and_hadamards):
    """in -[?H]- Z(p1) -[?H]- ... - out single-wire diagram."""
    d = ZXDiagram()
    i = d.add_vertex(VertexType.BOUNDARY)
    previous = i
    for phase, hadamard in phases_and_hadamards:
        v = d.add_vertex(VertexType.Z, phase)
        d.connect(
            previous, v,
            EdgeType.HADAMARD if hadamard else EdgeType.SIMPLE,
        )
        previous = v
    o = d.add_vertex(VertexType.BOUNDARY)
    d.connect(previous, o, EdgeType.SIMPLE)
    d.inputs, d.outputs = [i], [o]
    return d


class TestChainContraction:
    def test_cancelling_float_phases(self):
        """rz(a) rz(-a) written as two separate float spiders."""
        a = 0.7312894561230001  # keep it non-dyadic so snapping stays off
        diagram = wire_with_phases([(a / math.pi, False), (-a / math.pi, False)])
        removed = contract_unitary_chains(diagram)
        assert removed == 1
        assert diagram.is_identity_diagram()

    def test_euler_identity_chain(self):
        """H-separated chain multiplying out to the identity collapses."""
        # Z(1/2) H Z(1/2) H Z(1/2) = ... proportional to H; then another
        # such block gives identity up to phase.
        half = Fraction(1, 2)
        chain = [(half, False), (half, True), (half, True)]
        diagram = wire_with_phases(chain + [(-half, True), (-half, True), (-half, False)])
        # build a fresh diagram matching the tensor first
        matrix = diagram_to_matrix(diagram)
        import numpy as np

        if not diagrams_proportional(matrix, np.eye(2)):
            pytest.skip("constructed chain is not identity; skip")
        contract_unitary_chains(diagram)
        assert diagram.is_identity_diagram()

    def test_hadamard_chain_becomes_h_edge(self):
        diagram = wire_with_phases([(0, True)])  # in -H- Z(0) - out
        removed = contract_unitary_chains(diagram)
        assert removed == 1
        # single H wire: boundary - H - boundary
        (i,) = diagram.inputs
        (o,) = diagram.outputs
        assert diagram.edge_type(i, o) is EdgeType.HADAMARD

    def test_non_identity_chain_untouched(self):
        diagram = wire_with_phases([(0.123, False)])
        assert contract_unitary_chains(diagram) == 0
        assert diagram.num_spiders == 1

    def test_semantics_preserved_on_random_chains(self):
        import random

        rng = random.Random(4)
        for _ in range(10):
            chain = [
                (rng.uniform(0, 2), rng.random() < 0.5) for _ in range(4)
            ]
            diagram = wire_with_phases(chain)
            before = diagram_to_matrix(diagram)
            contract_unitary_chains(diagram)
            assert diagrams_proportional(diagram_to_matrix(diagram), before)

    def test_fixes_euler_convention_residue(self):
        """The motivating case: same unitary, two decompositions."""
        from repro.compile.decompose import decompose_to_basis

        circuit = QuantumCircuit(1).u3(0.3, 0.9, 1.7, 0)
        other = decompose_to_basis(circuit)  # different gate spelling
        diagram = (
            circuit_to_zx(circuit).adjoint().compose(circuit_to_zx(other))
        )
        full_reduce(diagram)
        while contract_unitary_chains(diagram):
            full_reduce(diagram)
        assert diagram.is_identity_diagram()
