"""Tests for benchmark-suite construction and the study harness."""

import pytest

from repro.bench.suite import (
    BenchmarkInstance,
    CONFIGURATIONS,
    compiled_benchmarks,
    optimized_benchmarks,
)
from repro.bench.study import CellResult, _judge, format_row, run_instance
from repro.compile.architectures import line_architecture
from repro.ec.results import Equivalence


@pytest.fixture(scope="module")
def small_compiled():
    # a tiny device keeps this fast; the suite only needs structure here
    return compiled_benchmarks(scale="small", seed=0)


class TestSuiteConstruction:
    def test_compiled_suite_shape(self, small_compiled):
        assert len(small_compiled) == 6
        for instance in small_compiled:
            assert set(instance.variants) == set(CONFIGURATIONS)
            assert instance.use_case == "compiled"
            assert instance.size_variant > 0

    def test_compiled_variants_differ(self, small_compiled):
        instance = small_compiled[0]
        equivalent = instance.variants["equivalent"]
        assert (
            len(instance.variants["gate_missing"]) == len(equivalent) - 1
        )
        assert (
            instance.variants["flipped_cnot"].operations
            != equivalent.operations
        )

    def test_optimized_suite_shape(self):
        instances = optimized_benchmarks(scale="small", seed=0)
        assert len(instances) == 6
        names = [i.name for i in instances]
        assert any("urf" in n for n in names)
        assert any("plus" in n for n in names)
        assert any("hwb" in n for n in names)

    def test_optimized_originals_keep_mct(self):
        instances = optimized_benchmarks(scale="small", seed=0)
        urf = next(i for i in instances if "urf" in i.name)
        assert any(len(op.controls) >= 2 for op in urf.original)
        # the optimized variant is in the device basis
        for op in urf.variants["equivalent"]:
            assert len(op.controls) <= 1

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            compiled_benchmarks(scale="huge")
        with pytest.raises(ValueError):
            optimized_benchmarks(scale="huge")


class TestStudyHarness:
    def test_judge(self):
        assert _judge(Equivalence.EQUIVALENT, True) is True
        assert _judge(Equivalence.EQUIVALENT, False) is False
        assert _judge(Equivalence.NOT_EQUIVALENT, False) is True
        assert _judge(Equivalence.PROBABLY_EQUIVALENT, True) is True
        assert _judge(Equivalence.NO_INFORMATION, False) is None
        assert _judge(Equivalence.TIMEOUT, True) is None

    def test_cell_render(self):
        cell = CellResult(1.234, Equivalence.EQUIVALENT, False, True)
        assert cell.render(60) == "1.23"
        timeout_cell = CellResult(60, Equivalence.TIMEOUT, True, None)
        assert timeout_cell.render(60) == ">60"
        wrong = CellResult(0.5, Equivalence.EQUIVALENT, False, False)
        assert wrong.render(60).endswith("!")
        unknown = CellResult(0.5, Equivalence.NO_INFORMATION, False, None)
        assert unknown.render(60).endswith("?")

    def test_run_instance_smoke(self):
        """End-to-end: one tiny instance through both methods x 3 configs."""
        from repro.bench import algorithms
        from repro.compile import compile_circuit
        from repro.bench.errors import flip_random_cnot, remove_random_gate

        original = algorithms.ghz_state(3)
        compiled = compile_circuit(original, line_architecture(4))
        instance = BenchmarkInstance(
            "ghz_3",
            "compiled",
            original,
            {
                "equivalent": compiled,
                "gate_missing": remove_random_gate(compiled, seed=1),
                "flipped_cnot": flip_random_cnot(compiled, seed=1),
            },
        )
        row = run_instance(instance, timeout=30, seed=0)
        assert len(row.cells) == 6
        equivalent_dd = row.cells["equivalent/dd"]
        assert equivalent_dd.correct is True
        gate_missing_dd = row.cells["gate_missing/dd"]
        assert gate_missing_dd.correct is True  # proved NOT equivalent
        # the ZX method never *wrongly* accepts
        for config in CONFIGURATIONS:
            assert row.cells[f"{config}/zx"].correct is not False
        # rendering does not crash
        assert row.name in format_row(row, 30)
