"""End-to-end tests of the study harness CLI (`repro.bench.study.main`)."""

import pytest

import repro.bench.study as study
from repro.bench.algorithms import ghz_state
from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.bench.suite import BenchmarkInstance
from repro.compile import compile_circuit, line_architecture


@pytest.fixture
def tiny_suite(monkeypatch):
    """Swap the real benchmark builders for a single tiny instance."""
    original = ghz_state(3)
    compiled = compile_circuit(original, line_architecture(4))
    instance = BenchmarkInstance(
        "ghz_3",
        "compiled",
        original,
        {
            "equivalent": compiled,
            "gate_missing": remove_random_gate(compiled, seed=1),
            "flipped_cnot": flip_random_cnot(compiled, seed=1),
        },
    )
    monkeypatch.setattr(
        study, "compiled_benchmarks", lambda scale, seed: [instance]
    )
    monkeypatch.setattr(
        study, "optimized_benchmarks", lambda scale, seed: [instance]
    )
    return instance


class TestStudyMain:
    def test_single_use_case(self, tiny_suite, capsys):
        assert study.main(["--use-case", "compiled", "--timeout", "20"]) == 0
        out = capsys.readouterr().out
        assert "Compiled Circuits" in out
        assert "ghz_3" in out
        assert "t_dd" in out and "t_zx" in out

    def test_both_use_cases(self, tiny_suite, capsys):
        assert study.main(["--use-case", "both", "--timeout", "20"]) == 0
        out = capsys.readouterr().out
        assert "Optimized Circuits" in out

    def test_report_written(self, tiny_suite, tmp_path, capsys):
        report = tmp_path / "run.md"
        assert (
            study.main(
                [
                    "--use-case", "compiled", "--timeout", "20",
                    "--report", str(report),
                ]
            )
            == 0
        )
        text = report.read_text()
        assert text.startswith("# Case-study run")
        assert "| ghz_3 |" in text

    def test_unknown_use_case_rejected(self):
        with pytest.raises(SystemExit):
            study.main(["--use-case", "imaginary"])

    def test_run_table_rejects_unknown_use_case(self):
        with pytest.raises(ValueError):
            study.run_table(use_case="imaginary")
