"""Tests for benchmark artifact export/import (`repro.bench.artifacts`)."""

import json

import pytest

from repro.bench.artifacts import (
    MANIFEST_NAME,
    export_benchmarks,
    load_benchmark_pair,
    load_manifest,
)
from repro.ec import Configuration, EquivalenceCheckingManager


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    directory = tmp_path_factory.mktemp("benchmarks")
    manifest = export_benchmarks(
        directory, scale="small", seed=0, use_cases=("optimized",)
    )
    return directory, manifest


class TestExport:
    def test_manifest_structure(self, exported):
        directory, manifest = exported
        assert "optimized" in manifest
        assert len(manifest["optimized"]) == 6
        assert (directory / MANIFEST_NAME).exists()
        assert load_manifest(directory) == manifest

    def test_files_on_disk(self, exported):
        directory, manifest = exported
        name = manifest["optimized"][0]
        folder = directory / "optimized" / name
        assert (folder / "original.qasm").exists()
        for config in ("equivalent", "gate_missing", "flipped_cnot"):
            assert (folder / f"{config}.qasm").exists()

    def test_qasm_is_parseable_by_header(self, exported):
        directory, manifest = exported
        name = manifest["optimized"][0]
        text = (directory / "optimized" / name / "original.qasm").read_text()
        assert text.startswith("OPENQASM 2.0;")


class TestRoundtrip:
    def test_equivalent_pair_verifies(self, exported):
        directory, manifest = exported
        name = next(n for n in manifest["optimized"] if "qft" in n)
        original, variant = load_benchmark_pair(
            directory, "optimized", name, "equivalent"
        )
        result = EquivalenceCheckingManager(
            original, variant, Configuration(strategy="combined", seed=0)
        ).run()
        assert result.considered_equivalent

    def test_broken_pair_fails(self, exported):
        directory, manifest = exported
        name = next(n for n in manifest["optimized"] if "qft" in n)
        original, variant = load_benchmark_pair(
            directory, "optimized", name, "gate_missing"
        )
        result = EquivalenceCheckingManager(
            original, variant, Configuration(strategy="combined", seed=0)
        ).run()
        assert not result.considered_equivalent

    def test_unknown_configuration_rejected(self, exported):
        directory, manifest = exported
        with pytest.raises(ValueError):
            load_benchmark_pair(
                directory, "optimized", manifest["optimized"][0], "scrambled"
            )

    def test_missing_benchmark_rejected(self, exported):
        directory, _ = exported
        with pytest.raises(FileNotFoundError):
            load_benchmark_pair(directory, "optimized", "nonexistent")
