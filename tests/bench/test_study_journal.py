"""Robustness features of the Table-1 harness: overrun flagging,
JSONL journaling with ``--resume``, and chaos containment at table level."""

import time

import pytest

import repro.bench.study as study
import repro.harness
from repro.bench.algorithms import ghz_state
from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.bench.study import CellResult, run_instance, run_table
from repro.bench.suite import BenchmarkInstance
from repro.compile import compile_circuit, line_architecture
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.harness import Journal
from repro.harness.chaos import ChaosSpec


@pytest.fixture
def tiny_instance():
    original = ghz_state(3)
    compiled = compile_circuit(original, line_architecture(4))
    return BenchmarkInstance(
        "ghz_3",
        "compiled",
        original,
        {
            "equivalent": compiled,
            "gate_missing": remove_random_gate(compiled, seed=1),
            "flipped_cnot": flip_random_cnot(compiled, seed=1),
        },
    )


@pytest.fixture
def tiny_suite(monkeypatch, tiny_instance):
    monkeypatch.setattr(
        study, "compiled_benchmarks", lambda scale, seed: [tiny_instance]
    )
    monkeypatch.setattr(
        study, "optimized_benchmarks", lambda scale, seed: [tiny_instance]
    )
    return tiny_instance


class TestOverrunAccounting:
    def test_cooperative_overrun_is_flagged(self, tiny_instance, monkeypatch):
        """A check that returns a verdict *after* blowing its budget must
        render as '>T', not as a normal runtime."""

        class SlowManager:
            def __init__(self, *args, **kwargs):
                pass

            def run(self):
                time.sleep(0.05)
                return EquivalenceCheckingResult(
                    Equivalence.EQUIVALENT, "combined", 0.05
                )

        monkeypatch.setattr(study, "EquivalenceCheckingManager", SlowManager)
        row = run_instance(tiny_instance, timeout=0.01, seed=0)
        for cell in row.cells.values():
            assert cell.overrun
            assert not cell.timed_out  # verdict was not TIMEOUT ...
            assert cell.render(0.01) == ">0.01"  # ... yet it renders as one

    def test_within_budget_not_flagged(self, tiny_instance):
        row = run_instance(tiny_instance, timeout=30.0, seed=0)
        for cell in row.cells.values():
            assert not cell.overrun
            assert not cell.render(30.0).startswith(">")

    def test_timeout_verdict_still_renders_as_timeout(self):
        cell = CellResult(5.0, Equivalence.TIMEOUT, True, None)
        assert cell.render(2.0) == ">2"

    def test_failure_cells_render_codes(self):
        cell = CellResult(
            0.1, Equivalence.NO_INFORMATION, False, None,
            failure="out_of_memory",
        )
        assert cell.render(60.0) == "oom"
        cell = CellResult(
            0.1, Equivalence.NO_INFORMATION, False, None, failure="crashed"
        )
        assert cell.render(60.0) == "crash"


class TestCellRecordRoundTrip:
    def test_round_trip(self):
        cell = CellResult(
            1.25, Equivalence.NOT_EQUIVALENT, False, True,
            overrun=False, failure=None,
        )
        restored = CellResult.from_record(cell.to_record())
        assert restored.seconds == cell.seconds
        assert restored.verdict is cell.verdict
        assert restored.correct is True
        assert restored.cached

    def test_round_trip_degraded(self):
        cell = CellResult(
            0.5, Equivalence.NO_INFORMATION, False, None,
            overrun=True, failure="crashed",
        )
        restored = CellResult.from_record(cell.to_record())
        assert restored.overrun
        assert restored.failure == "crashed"
        assert restored.correct is None

    def test_round_trip_portfolio_attribution(self):
        """Winner strategy and loser kill codes survive the journal."""
        cell = CellResult(
            0.3, Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE, False, True,
            winner="zx",
            kills={"alternating": "loser", "construction": "loser"},
        )
        record = cell.to_record()
        assert record["winner"] == "zx"
        restored = CellResult.from_record(record)
        assert restored.winner == "zx"
        assert restored.kills == {
            "alternating": "loser", "construction": "loser",
        }

    def test_sequential_cells_omit_portfolio_fields(self):
        cell = CellResult(1.0, Equivalence.EQUIVALENT, False, True)
        record = cell.to_record()
        assert "winner" not in record
        assert "kills" not in record
        restored = CellResult.from_record(record)
        assert restored.winner is None
        assert restored.kills is None


class TestJournalResume:
    def _run_with_journal(self, instance, path, resume=False):
        with Journal(path, {"timeout": 30.0, "seed": 0}, resume=resume) as j:
            row = run_instance(instance, timeout=30.0, seed=0, journal=j)
        return row

    def test_completed_cells_not_re_run(
        self, tiny_instance, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        first = self._run_with_journal(tiny_instance, path)

        calls = []
        real_manager = study.EquivalenceCheckingManager

        class CountingManager(real_manager):
            def run(self):
                calls.append(1)
                return super().run()

        monkeypatch.setattr(study, "EquivalenceCheckingManager", CountingManager)
        resumed = self._run_with_journal(tiny_instance, path, resume=True)
        assert calls == []  # every cell restored from the journal
        for key, cell in resumed.cells.items():
            assert cell.cached
            assert cell.verdict is first.cells[key].verdict

    def test_partial_journal_reruns_only_missing_cells(
        self, tiny_instance, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        self._run_with_journal(tiny_instance, path)
        # Simulate a kill after three completed cells: header + 3 records.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:4]) + "\n")

        calls = []
        real_manager = study.EquivalenceCheckingManager

        class CountingManager(real_manager):
            def run(self):
                calls.append(1)
                return super().run()

        monkeypatch.setattr(study, "EquivalenceCheckingManager", CountingManager)
        resumed = self._run_with_journal(tiny_instance, path, resume=True)
        assert len(calls) == 3  # exactly the journaled-but-missing cells
        assert sum(cell.cached for cell in resumed.cells.values()) == 3

    def test_main_resume_flow(self, tiny_suite, tmp_path, capsys):
        path = tmp_path / "study.jsonl"
        args = [
            "--use-case", "compiled", "--timeout", "30",
            "--journal", str(path),
        ]
        assert study.main(args) == 0
        capsys.readouterr()
        assert study.main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming: 6 cells restored" in out

    def test_main_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            study.main(["--resume"])

    def test_mismatched_journal_refused(self, tiny_suite, tmp_path):
        path = tmp_path / "study.jsonl"
        assert (
            study.main(
                ["--use-case", "compiled", "--timeout", "30",
                 "--journal", str(path)]
            )
            == 0
        )
        from repro.harness import JournalMismatch

        with pytest.raises(JournalMismatch):
            study.main(
                ["--use-case", "compiled", "--timeout", "60",
                 "--journal", str(path), "--resume"]
            )

    def test_portfolio_flag_mismatch_refused(self, tiny_suite, tmp_path):
        """A sequential journal must not silently resume as a portfolio
        run (or vice versa) — the cells would not be comparable."""
        path = tmp_path / "study.jsonl"
        assert (
            study.main(
                ["--use-case", "compiled", "--timeout", "30",
                 "--journal", str(path)]
            )
            == 0
        )
        from repro.harness import JournalMismatch

        with pytest.raises(JournalMismatch):
            study.main(
                ["--use-case", "compiled", "--timeout", "30",
                 "--journal", str(path), "--resume", "--portfolio"]
            )


class TestPortfolioCells:
    def test_combined_cells_carry_winner_attribution(self, tiny_instance):
        row = run_instance(
            tiny_instance, timeout=30.0, seed=0, portfolio=True
        )
        for key, cell in row.cells.items():
            if key.endswith("/dd"):
                # The racing column: every cell records which lane won.
                assert cell.winner is not None, key
            else:
                # The standalone ZX column never races.
                assert cell.winner is None, key
                assert cell.kills is None, key


@pytest.mark.chaos
class TestTableLevelContainment:
    def test_one_crashing_cell_does_not_kill_the_table(
        self, tiny_instance, monkeypatch
    ):
        """First cell crashes hard in its sandbox; the harness records a
        structured failure and completes the remaining five cells."""
        baseline = run_instance(tiny_instance, timeout=30.0, seed=0)
        real_run_check = repro.harness.run_check
        calls = []

        def chaotic_run_check(circuit1, circuit2, configuration, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                kwargs["chaos"] = ChaosSpec(mode="crash")
                kwargs["retry"] = None
                configuration = type(configuration)(
                    **{**configuration.__dict__, "max_retries": 0}
                )
            return real_run_check(
                circuit1, circuit2, configuration, **kwargs
            )

        monkeypatch.setattr(repro.harness, "run_check", chaotic_run_check)
        row = run_instance(tiny_instance, timeout=30.0, seed=0, isolate=True)
        keys = list(row.cells)
        assert len(keys) == 6
        crashed = row.cells[keys[0]]
        assert crashed.failure == "crashed"
        assert crashed.verdict is Equivalence.NO_INFORMATION
        for key in keys[1:]:
            cell = row.cells[key]
            assert cell.failure is None
            assert cell.verdict is baseline.cells[key].verdict, key

    def test_isolated_and_in_process_tables_agree(self, tiny_suite):
        isolated = run_table(
            use_case="compiled", timeout=30.0, verbose=False, isolate=True
        )
        in_process = run_table(
            use_case="compiled", timeout=30.0, verbose=False, isolate=False
        )
        for row_iso, row_in in zip(isolated, in_process):
            for key in row_in.cells:
                assert (
                    row_iso.cells[key].verdict is row_in.cells[key].verdict
                ), key
