"""Tests for the reversible-circuit substrate (`repro.bench.reversible`)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.reversible import (
    ReversibleFunction,
    circuit_truth_table,
    hidden_weighted_bit,
    plus_constant_adder_circuit,
    plus_constant_mod,
    random_reversible_function,
    synthesize,
)


class TestReversibleFunction:
    def test_valid_table(self):
        fn = ReversibleFunction(2, [3, 0, 2, 1])
        assert fn(0) == 3
        assert fn(3) == 1

    def test_invalid_table_rejected(self):
        with pytest.raises(ValueError):
            ReversibleFunction(2, [0, 0, 1, 2])
        with pytest.raises(ValueError):
            ReversibleFunction(2, [0, 1, 2])

    def test_inverse(self):
        fn = ReversibleFunction(2, [3, 0, 2, 1])
        inverse = fn.inverse()
        for x in range(4):
            assert inverse(fn(x)) == x

    def test_from_callable(self):
        fn = ReversibleFunction.from_callable(3, lambda x: x ^ 5)
        assert fn(0) == 5


class TestSynthesis:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_functions(self, seed):
        fn = random_reversible_function(4, seed=seed)
        circuit = synthesize(fn)
        assert circuit_truth_table(circuit) == fn.table

    def test_identity_function_yields_empty_circuit(self):
        fn = ReversibleFunction(3, list(range(8)))
        assert len(synthesize(fn)) == 0

    def test_not_gate(self):
        fn = ReversibleFunction(1, [1, 0])
        circuit = synthesize(fn)
        assert circuit_truth_table(circuit) == [1, 0]

    def test_only_mct_gates_emitted(self):
        circuit = synthesize(random_reversible_function(4, seed=9))
        for op in circuit:
            assert op.name == "x"
            assert len(op.targets) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_synthesis_correct_property(self, seed):
        fn = random_reversible_function(3, seed=seed)
        assert circuit_truth_table(synthesize(fn)) == fn.table

    def test_larger_function(self):
        fn = random_reversible_function(6, seed=1)
        assert circuit_truth_table(synthesize(fn)) == fn.table


class TestFunctionFamilies:
    def test_plus_constant(self):
        fn = plus_constant_mod(4, 5)
        assert fn(0) == 5
        assert fn(15) == 4  # wraps mod 16

    def test_plus_constant_wraps_constant(self):
        assert plus_constant_mod(3, 9).table == plus_constant_mod(3, 1).table

    def test_hidden_weighted_bit(self):
        fn = hidden_weighted_bit(4)
        assert fn(0) == 0  # weight 0: no rotation
        # weight(0b0001)=1: rotate right by 1 -> 0b1000
        assert fn(1) == 8

    def test_hwb_is_bijection(self):
        fn = hidden_weighted_bit(6)
        assert sorted(fn.table) == list(range(64))

    @pytest.mark.parametrize("bits,constant", [(4, 3), (5, 13), (6, 21)])
    def test_ripple_adder_matches_truth_table(self, bits, constant):
        ripple = plus_constant_adder_circuit(bits, constant)
        assert (
            circuit_truth_table(ripple)
            == plus_constant_mod(bits, constant).table
        )

    def test_urf_deterministic(self):
        assert (
            random_reversible_function(5, seed=3).table
            == random_reversible_function(5, seed=3).table
        )


class TestTruthTableEvaluation:
    def test_rejects_non_mct(self):
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(1).h(0)
        with pytest.raises(ValueError):
            circuit_truth_table(circuit)

    def test_controls_respected(self):
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(3).mcx([0, 1], 2)
        table = circuit_truth_table(circuit)
        assert table[3] == 7
        assert table[1] == 1
