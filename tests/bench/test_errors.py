"""Tests for error injection (`repro.bench.errors`)."""

import pytest

from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from tests.conftest import random_circuit


class TestRemoveRandomGate:
    def test_one_gate_removed(self):
        circuit = random_circuit(3, 20, seed=1)
        broken = remove_random_gate(circuit, seed=2)
        assert len(broken) == len(circuit) - 1

    def test_deterministic_with_seed(self):
        circuit = random_circuit(3, 20, seed=1)
        assert (
            remove_random_gate(circuit, seed=5).operations
            == remove_random_gate(circuit, seed=5).operations
        )

    def test_metadata_preserved(self):
        circuit = random_circuit(3, 10, seed=1)
        circuit.initial_layout = {0: 1, 1: 0}
        broken = remove_random_gate(circuit, seed=0)
        assert broken.initial_layout == circuit.initial_layout

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            remove_random_gate(QuantumCircuit(2))


class TestFlipRandomCnot:
    def test_gate_count_unchanged(self):
        circuit = random_circuit(3, 20, seed=3).cx(0, 1)
        flipped = flip_random_cnot(circuit, seed=1)
        assert len(flipped) == len(circuit)

    def test_control_target_exchanged(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        flipped = flip_random_cnot(circuit, seed=0)
        assert flipped[0].controls == (1,)
        assert flipped[0].targets == (0,)

    def test_flip_changes_functionality(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        flipped = flip_random_cnot(circuit, seed=0)
        assert not unitaries_equivalent(
            circuit_unitary(circuit), circuit_unitary(flipped)
        )

    def test_no_cnot_rejected(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        with pytest.raises(ValueError):
            flip_random_cnot(circuit)

    def test_only_single_controlled_x_eligible(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2).cx(0, 1)
        flipped = flip_random_cnot(circuit, seed=0)
        # the Toffoli must never be flipped
        assert flipped[0] == circuit[0]
