"""Tests for the additional benchmark families (DJ, Simon, VQE, Clifford+T)."""

import numpy as np
import pytest

from repro.bench.algorithms import (
    deutsch_jozsa,
    random_clifford_t,
    simon,
    vqe_ansatz,
)
from repro.circuit import circuit_unitary, statevector


class TestDeutschJozsa:
    def test_constant_oracle_returns_zero(self):
        circuit = deutsch_jozsa(4, balanced=False)
        probabilities = np.abs(statevector(circuit)) ** 2
        peak = int(np.argmax(probabilities))
        assert peak & 15 == 0
        assert probabilities[peak] == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_balanced_oracle_never_returns_zero(self, seed):
        circuit = deutsch_jozsa(4, balanced=True, seed=seed)
        state = statevector(circuit)
        # amplitude of the data register reading all-zero must vanish
        zero_probability = sum(
            abs(state[k]) ** 2 for k in range(32) if k & 15 == 0
        )
        assert zero_probability == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_with_seed(self):
        assert (
            deutsch_jozsa(5, seed=3).operations
            == deutsch_jozsa(5, seed=3).operations
        )


class TestSimon:
    @pytest.mark.parametrize("secret", [1, 2, 3, 5])
    def test_measurements_orthogonal_to_secret(self, secret):
        """Every data-register outcome y satisfies y . s = 0 (mod 2)."""
        n = 3
        circuit = simon(secret, n)
        state = statevector(circuit)
        for basis in range(1 << (2 * n)):
            if abs(state[basis]) < 1e-12:
                continue
            y = basis & ((1 << n) - 1)
            parity = bin(y & secret).count("1") % 2
            assert parity == 0, (secret, y)

    def test_invalid_secret_rejected(self):
        with pytest.raises(ValueError):
            simon(0, 3)
        with pytest.raises(ValueError):
            simon(8, 3)

    def test_width(self):
        assert simon(3, 4).num_qubits == 8


class TestVQEAnsatz:
    def test_unitary(self):
        circuit = vqe_ansatz(3, layers=2, seed=1)
        unitary = circuit_unitary(circuit)
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(8), atol=1e-9
        )

    def test_structure(self):
        circuit = vqe_ansatz(4, layers=3, seed=0)
        counts = circuit.count_ops()
        assert counts["cx"] == 3 * 3  # (n-1) per layer
        assert counts["ry"] == 4 * 4  # per layer + final

    def test_mostly_non_clifford(self):
        """The 'arbitrary angle' workload of Section 6.2."""
        circuit = vqe_ansatz(4, layers=2, seed=5)
        assert circuit.non_clifford_count() > len(circuit) / 2

    def test_deterministic(self):
        assert (
            vqe_ansatz(3, seed=9).operations == vqe_ansatz(3, seed=9).operations
        )


class TestRandomCliffordT:
    def test_zero_fraction_is_clifford(self):
        from repro.stab import CliffordTableau

        circuit = random_clifford_t(4, 40, t_fraction=0.0, seed=1)
        CliffordTableau.from_circuit(circuit)  # must not raise

    def test_t_fraction_controls_t_count(self):
        low = random_clifford_t(4, 200, t_fraction=0.05, seed=2)
        high = random_clifford_t(4, 200, t_fraction=0.6, seed=2)
        assert low.t_count() < high.t_count()

    def test_is_unitary(self):
        circuit = random_clifford_t(3, 30, seed=3)
        unitary = circuit_unitary(circuit)
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(8), atol=1e-9
        )
