"""Tests for Markdown report generation (`repro.bench.report`)."""

import pytest

from repro.bench.report import rows_to_markdown, write_report
from repro.bench.study import CellResult, TableRow
from repro.ec.results import Equivalence


def _row(name="ghz_3", timed_out=False, correct=True):
    cells = {}
    for config in ("equivalent", "gate_missing", "flipped_cnot"):
        for method in ("dd", "zx"):
            cells[f"{config}/{method}"] = CellResult(
                0.42,
                Equivalence.TIMEOUT if timed_out else Equivalence.EQUIVALENT,
                timed_out,
                None if timed_out else correct,
            )
    return TableRow(name, "compiled", 5, 10, 20, cells)


class TestRowsToMarkdown:
    def test_table_structure(self):
        markdown = rows_to_markdown([_row()], timeout=30)
        lines = markdown.splitlines()
        assert lines[0] == "## Table 1"
        assert lines[2].startswith("| Benchmark |")
        assert "| ghz_3 | 5 | 10 | 20 |" in markdown

    def test_summary_counts(self):
        markdown = rows_to_markdown(
            [_row(), _row(name="qft", timed_out=True)], timeout=30
        )
        assert "12 checks total" in markdown
        assert "timeout (6)" in markdown

    def test_wrong_verdicts_counted(self):
        markdown = rows_to_markdown([_row(correct=False)], timeout=30)
        assert "wrong verdict (6)" in markdown
        assert "0.42!" in markdown

    def test_write_report(self, tmp_path):
        path = write_report(
            tmp_path / "report.md",
            {"compiled": [_row()], "optimized": [_row(name="urf")]},
            timeout=30,
            preamble="# My run",
        )
        text = path.read_text()
        assert text.startswith("# My run")
        assert "## Compiled Circuits" in text
        assert "## Optimized Circuits" in text
