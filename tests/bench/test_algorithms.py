"""Tests for the benchmark circuit generators (`repro.bench.algorithms`)."""

import math

import numpy as np
import pytest

from repro.bench import algorithms as alg
from repro.circuit import circuit_unitary, statevector, unitaries_equivalent


class TestGHZ:
    @pytest.mark.parametrize("linear", [True, False])
    def test_statevector(self, linear):
        state = statevector(alg.ghz_state(4, linear=linear))
        assert abs(state[0]) ** 2 == pytest.approx(0.5)
        assert abs(state[15]) ** 2 == pytest.approx(0.5)

    def test_gate_count_is_linear(self):
        assert len(alg.ghz_state(65)) == 65

    def test_single_qubit(self):
        state = statevector(alg.ghz_state(1))
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            alg.ghz_state(0)


class TestGraphState:
    def test_explicit_edges(self):
        circuit = alg.graph_state(3, edges=[(0, 1), (1, 2)])
        counts = circuit.count_ops()
        assert counts["h"] == 3
        assert counts["cz"] == 2

    def test_random_edges_deterministic(self):
        a = alg.graph_state(8, seed=3)
        b = alg.graph_state(8, seed=3)
        assert a.operations == b.operations

    def test_stabilizer_condition(self):
        """Graph state is stabilized by X_v Z_N(v) for every vertex."""
        edges = [(0, 1), (1, 2), (0, 2)]
        state = statevector(alg.graph_state(3, edges=edges))
        from repro.circuit import QuantumCircuit
        from repro.circuit.unitary import apply_operation
        from repro.circuit.gate import Operation

        for vertex in range(3):
            stabilized = apply_operation(
                state.copy(), Operation("x", (vertex,)), 3
            )
            for a, b in edges:
                other = b if a == vertex else a if b == vertex else None
                if other is not None:
                    stabilized = apply_operation(
                        stabilized, Operation("z", (other,)), 3
                    )
            np.testing.assert_allclose(stabilized, state, atol=1e-9)


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (r * c) for c in range(dim)] for r in range(dim)]
        ) / math.sqrt(dim)
        np.testing.assert_allclose(
            circuit_unitary(alg.qft(n)), dft, atol=1e-9
        )

    def test_without_swaps_is_bit_reversed(self):
        n = 3
        with_swaps = circuit_unitary(alg.qft(n))
        without = circuit_unitary(alg.qft(n, with_swaps=False))
        assert not np.allclose(with_swaps, without)

    def test_inverse_qft(self):
        composed = alg.qft(4).compose(alg.inverse_qft(4))
        np.testing.assert_allclose(
            circuit_unitary(composed), np.eye(16), atol=1e-9
        )


class TestQPE:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_exact_phase_collapses(self, n):
        circuit = alg.qpe_exact(n)
        state = statevector(circuit)
        probabilities = np.abs(state) ** 2
        peak = int(np.argmax(probabilities))
        assert probabilities[peak] == pytest.approx(1.0, abs=1e-9)
        # default phase is 1/2 + 1/2^n -> counting value 2^(n-1) + 1
        assert peak & ((1 << n) - 1) == (1 << (n - 1)) + 1

    def test_custom_phase(self):
        circuit = alg.qpe_exact(3, phase=0.25)
        state = statevector(circuit)
        peak = int(np.argmax(np.abs(state) ** 2))
        assert peak & 7 == 2  # 0.25 * 8


class TestGrover:
    @pytest.mark.parametrize("marked", [0, 5, 15])
    def test_marked_state_amplified(self, marked):
        circuit = alg.grover(4, marked=marked)
        probabilities = np.abs(statevector(circuit)) ** 2
        assert int(np.argmax(probabilities)) == marked
        assert probabilities[marked] > 0.9

    def test_iteration_count_default(self):
        circuit = alg.grover(4)
        # floor(pi/4 * sqrt(16)) = 3 iterations
        assert circuit.count_ops()["h"] >= 4 + 3 * 8

    def test_invalid_marked_rejected(self):
        with pytest.raises(ValueError):
            alg.grover(3, marked=8)


class TestRandomWalk:
    def test_unitary(self):
        unitary = circuit_unitary(alg.quantum_random_walk(3, steps=1))
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(16), atol=1e-9
        )

    def test_shift_structure(self):
        """With the coin forced to |1>, one step increments the position."""
        from repro.circuit import QuantumCircuit

        walk = alg.quantum_random_walk(3, steps=1)
        # remove the coin flip to make the classical action visible
        ops = [op for op in walk if not (op.name == "h")]
        circuit = QuantumCircuit(4, operations=ops)
        for position in range(8):
            basis = position | (1 << 3)  # coin = 1
            state = np.zeros(16, dtype=complex)
            state[basis] = 1.0
            out = np.abs(statevector(circuit, state)) ** 2
            target = ((position + 1) % 8) | (1 << 3)
            assert out[target] == pytest.approx(1.0)

    def test_gate_count_scales_with_steps(self):
        assert len(alg.quantum_random_walk(3, steps=4)) == 2 * len(
            alg.quantum_random_walk(3, steps=2)
        )


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_equal_superposition_of_weight_one(self, n):
        state = statevector(alg.w_state(n))
        for k in range(2**n):
            weight = bin(k).count("1")
            expected = 1.0 / n if weight == 1 else 0.0
            assert abs(state[k]) ** 2 == pytest.approx(expected, abs=1e-9)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0, 1, 6, 15])
    def test_secret_recovered(self, secret):
        circuit = alg.bernstein_vazirani(secret, 4)
        probabilities = np.abs(statevector(circuit)) ** 2
        peak = int(np.argmax(probabilities))
        assert peak & 15 == secret


class TestAdder:
    def test_addition_truth_table(self):
        from repro.bench.reversible import circuit_truth_table

        table = circuit_truth_table(alg.cuccaro_adder(3))
        for a in range(8):
            for b in range(8):
                result = table[a | (b << 3)]
                assert result & 7 == a  # a register preserved
                assert (result >> 3) & 7 == (a + b) % 8
