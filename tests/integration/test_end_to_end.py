"""Cross-module integration tests: the full case-study pipeline.

These tests tie everything together the way the paper's evaluation does:
generate benchmark circuits, compile/optimize them, inject errors, and
check equivalence with every strategy — asserting the *verdicts* (the
paper's correctness claim: "Both methods managed to prove the correct
result for all considered circuits where a result is obtained").
"""

import pytest

from repro.bench import algorithms as alg
from repro.bench import reversible as rev
from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.circuit import circuit_from_qasm, circuit_to_qasm
from repro.compile import (
    compile_circuit,
    grid_architecture,
    line_architecture,
    manhattan_architecture,
)
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    Equivalence.PROBABLY_EQUIVALENT,
)
NEGATIVE_OR_UNKNOWN = (
    Equivalence.NOT_EQUIVALENT,
    Equivalence.NO_INFORMATION,
)


def check(circuit1, circuit2, strategy, seed=0):
    return EquivalenceCheckingManager(
        circuit1,
        circuit2,
        Configuration(strategy=strategy, seed=seed, timeout=120),
    ).run()


BENCHMARKS = [
    ("ghz", lambda: alg.ghz_state(5)),
    ("graph_state", lambda: alg.graph_state(5, seed=1)),
    ("qft", lambda: alg.qft(4)),
    ("qpe", lambda: alg.qpe_exact(3)),
    ("grover", lambda: alg.grover(3)),
    ("walk", lambda: alg.quantum_random_walk(2, steps=2)),
    ("bv", lambda: alg.bernstein_vazirani(5, 3)),
    ("adder", lambda: alg.cuccaro_adder(2)),
    ("urf", lambda: rev.synthesize(rev.random_reversible_function(4, seed=2))),
]


class TestCompiledUseCase:
    @pytest.mark.parametrize("name,generator", BENCHMARKS, ids=lambda b: str(b))
    @pytest.mark.parametrize("strategy", ["combined", "zx"])
    def test_equivalent_verdicts(self, name, generator, strategy):
        if callable(generator):
            original = generator()
            device = line_architecture(original.num_qubits + 2)
            compiled = compile_circuit(original, device)
            result = check(original, compiled, strategy)
            assert result.equivalence in POSITIVE, (name, result.equivalence)

    @pytest.mark.parametrize(
        "error", [remove_random_gate, flip_random_cnot], ids=lambda f: f.__name__
    )
    def test_error_injected_verdicts(self, error):
        original = alg.grover(3)
        compiled = compile_circuit(original, line_architecture(5))
        broken = error(compiled, seed=3)
        dd = check(original, broken, "combined")
        assert dd.equivalence in (
            Equivalence.NOT_EQUIVALENT,
            # an unlucky removal can keep the circuit equivalent; the DD
            # checker then *proves* that instead
            Equivalence.EQUIVALENT,
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        )
        zx = check(original, broken, "zx")
        if dd.equivalence is Equivalence.NOT_EQUIVALENT:
            assert zx.equivalence in NEGATIVE_OR_UNKNOWN


class TestOptimizedUseCase:
    @pytest.mark.parametrize(
        "name,generator", BENCHMARKS[:6], ids=lambda b: str(b)
    )
    def test_original_vs_optimized(self, name, generator):
        if callable(generator):
            original = generator()
            lowered = decompose_to_basis(original)
            optimized = optimize_circuit(lowered, level=2)
            for strategy in ("combined", "zx"):
                result = check(original, optimized, strategy)
                assert result.equivalence in POSITIVE, (
                    name,
                    strategy,
                    result.equivalence,
                )


class TestQasmInterchange:
    """The paper's workflow: benchmarks travel as QASM files."""

    def test_roundtrip_through_qasm_then_verify(self):
        original = alg.grover(3)
        compiled = compile_circuit(original, grid_architecture(2, 3))
        # serialize both, reparse, re-attach metadata
        original2 = circuit_from_qasm(circuit_to_qasm(original))
        compiled2 = circuit_from_qasm(circuit_to_qasm(compiled))
        compiled2.initial_layout = dict(compiled.initial_layout)
        compiled2.output_permutation = dict(compiled.output_permutation)
        result = check(original2, compiled2, "combined")
        assert result.equivalence in POSITIVE


class TestManhattanScale:
    """65-qubit checks exercise the wide-register code paths."""

    def test_ghz_on_manhattan(self):
        original = alg.ghz_state(16)
        compiled = compile_circuit(original, manhattan_architecture())
        assert compiled.num_qubits == 65
        result = check(original, compiled, "alternating")
        assert result.equivalence in POSITIVE
        zx = check(original, compiled, "zx")
        assert zx.equivalence in POSITIVE

    def test_identity_dd_is_tiny_at_65_qubits(self):
        from repro.dd import DDPackage, matrix_dd_size

        pkg = DDPackage()
        assert matrix_dd_size(pkg.identity(65)) == 65
