"""Cross-engine validation and metamorphic properties.

The reproduction contains four independent semantic engines — dense
matrices, decision diagrams, ZX tensor networks and the Clifford tableau.
These tests pit them against each other on the same random circuits, and
check metamorphic properties of the equivalence checkers (verdicts must be
invariant under transformations that provably preserve — or provably
break — equivalence).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.circuit.gate import Operation
from repro.dd import DDPackage, edge_to_matrix
from repro.dd.gates import circuit_dd
from repro.ec import (
    Configuration,
    EquivalenceCheckingManager,
    alternating_dd_check,
    construction_dd_check,
    simulation_check,
    zx_check,
)
from repro.ec.results import Equivalence
from repro.zx import circuit_to_zx, diagram_to_matrix, diagrams_proportional
from tests.conftest import random_circuit


class TestEngineAgreement:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100_000))
    def test_dd_zx_dense_same_unitary(self, seed):
        """Three ways to compute the same unitary must agree."""
        circuit = random_circuit(3, 12, seed=seed)
        dense = circuit_unitary(circuit)
        pkg = DDPackage()
        dd_matrix = edge_to_matrix(circuit_dd(pkg, circuit), 3)
        np.testing.assert_allclose(dd_matrix, dense, atol=1e-8)
        zx_matrix = diagram_to_matrix(circuit_to_zx(circuit))
        assert diagrams_proportional(zx_matrix, dense)

    @pytest.mark.parametrize("seed", range(6))
    def test_checker_verdicts_agree_on_equivalent_pairs(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        partner = circuit.copy()
        verdicts = {
            "alternating": alternating_dd_check(circuit, partner),
            "construction": construction_dd_check(circuit, partner),
            "simulation": simulation_check(
                circuit, partner, Configuration(seed=0)
            ),
            "zx": zx_check(circuit, partner),
        }
        for name, result in verdicts.items():
            assert result.considered_equivalent, name

    @pytest.mark.parametrize("seed", range(6))
    def test_no_checker_accepts_a_perturbed_circuit(self, seed):
        """A visibly wrong circuit must never be *proven* equivalent."""
        rng = random.Random(seed)
        circuit = random_circuit(4, 20, seed=seed)
        broken = circuit.copy().x(rng.randrange(4))
        for check in (alternating_dd_check, construction_dd_check):
            result = check(circuit, broken)
            assert result.equivalence is Equivalence.NOT_EQUIVALENT
        zx = zx_check(circuit, broken)
        assert not zx.considered_equivalent


class TestMetamorphicProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000), st.integers(0, 100))
    def test_inserting_inverse_pair_preserves_equivalence(
        self, seed, position_seed
    ):
        """G ~ G with any g g^-1 inserted anywhere."""
        circuit = random_circuit(3, 15, seed=seed)
        rng = random.Random(position_seed)
        position = rng.randrange(len(circuit) + 1)
        gate = Operation("t", (rng.randrange(3),))
        ops = list(circuit.operations)
        ops[position:position] = [gate, gate.inverse()]
        modified = QuantumCircuit(3, operations=ops)
        result = alternating_dd_check(circuit, modified)
        assert result.considered_equivalent

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_conjugating_by_circuit_preserves_identity(self, seed):
        """C G G^-1 C^-1 is the identity for any C, G."""
        conjugator = random_circuit(3, 8, seed=seed)
        inner = random_circuit(3, 8, seed=seed + 1)
        composed = (
            conjugator
            .compose(inner)
            .compose(inner.inverse())
            .compose(conjugator.inverse())
        )
        result = alternating_dd_check(composed, QuantumCircuit(3))
        assert result.considered_equivalent

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_appending_t_breaks_equivalence(self, seed):
        circuit = random_circuit(3, 15, seed=seed)
        modified = circuit.copy().t(0)
        result = alternating_dd_check(circuit, modified)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 100_000))
    def test_relabelling_qubits_with_metadata_is_equivalent(self, seed):
        """A relabelled circuit with matching layout metadata passes."""
        circuit = random_circuit(3, 12, seed=seed)
        permutation = {0: 2, 1: 0, 2: 1}
        relabelled = circuit.remapped(permutation)
        # wire w of the relabelled circuit carries logical q with
        # permutation[q] = w at input and output alike
        inverse = {w: q for q, w in permutation.items()}
        relabelled.initial_layout = inverse
        relabelled.output_permutation = inverse
        result = alternating_dd_check(circuit, relabelled)
        assert result.considered_equivalent

    def test_global_phase_never_breaks_equivalence(self):
        circuit = random_circuit(3, 15, seed=3)
        # X Z X Z = -I: a pure global phase tail
        phased = circuit.copy().x(0).z(0).x(0).z(0)
        result = alternating_dd_check(circuit, phased)
        assert result.equivalence in (
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
            Equivalence.EQUIVALENT,
        )


class TestManagerConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_combined_matches_alternating_on_equivalent(self, seed):
        circuit = random_circuit(4, 15, seed=seed)
        combined = EquivalenceCheckingManager(
            circuit, circuit.copy(), Configuration(strategy="combined", seed=0)
        ).run()
        alternating = EquivalenceCheckingManager(
            circuit,
            circuit.copy(),
            Configuration(strategy="alternating", seed=0),
        ).run()
        assert combined.considered_equivalent
        assert (
            combined.considered_equivalent
            == alternating.considered_equivalent
        )
