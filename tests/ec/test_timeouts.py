"""Timeout-path coverage for every strategy, graceful degradation, and
validation of the robustness-related configuration fields."""

import pytest

from repro.bench.algorithms import ghz_state
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence, EquivalenceCheckingTimeout
from repro.harness import chaos
from repro.harness.chaos import ChaosSpec

ALL_STRATEGIES = [
    "construction",
    "alternating",
    "simulation",
    "zx",
    "stabilizer",
    "state",
    "combined",
]


@pytest.fixture
def clifford_pair():
    # GHZ is Clifford, so every strategy — including the stabilizer
    # checker — accepts the pair.
    return ghz_state(4), ghz_state(4)


class TestTimeoutPathAllStrategies:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_near_zero_deadline_yields_timeout_verdict(
        self, strategy, clifford_pair
    ):
        """An already-expired deadline must surface as a TIMEOUT result,
        never as an exception — for every strategy."""
        circuit1, circuit2 = clifford_pair
        result = EquivalenceCheckingManager(
            circuit1,
            circuit2,
            Configuration(strategy=strategy, timeout=1e-9, seed=0),
        ).run()
        assert result.equivalence is Equivalence.TIMEOUT, strategy
        assert not result.considered_equivalent
        assert not result.proven

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_generous_deadline_still_succeeds(self, strategy, clifford_pair):
        circuit1, circuit2 = clifford_pair
        result = EquivalenceCheckingManager(
            circuit1,
            circuit2,
            Configuration(strategy=strategy, timeout=60.0, seed=0),
        ).run()
        assert result.considered_equivalent, strategy

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_timeout_not_raised_even_without_degradation(
        self, strategy, clifford_pair
    ):
        """Timeouts are an expected verdict, not a failure: the TIMEOUT
        path must hold even with graceful degradation switched off."""
        circuit1, circuit2 = clifford_pair
        result = EquivalenceCheckingManager(
            circuit1,
            circuit2,
            Configuration(
                strategy=strategy,
                timeout=1e-9,
                seed=0,
                graceful_degradation=False,
            ),
        ).run()
        assert result.equivalence is Equivalence.TIMEOUT, strategy


class TestGracefulDegradation:
    def test_checker_exception_degrades_to_no_information(self, clifford_pair):
        circuit1, circuit2 = clifford_pair
        chaos.activate(ChaosSpec(mode="exception"))
        try:
            result = EquivalenceCheckingManager(
                circuit1, circuit2, Configuration(strategy="combined")
            ).run()
        finally:
            chaos.deactivate()
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "crashed"
        assert "chaos" in result.failure["message"]

    def test_degradation_can_be_disabled(self, clifford_pair):
        circuit1, circuit2 = clifford_pair
        chaos.activate(ChaosSpec(mode="exception"))
        try:
            with pytest.raises(RuntimeError):
                EquivalenceCheckingManager(
                    circuit1,
                    circuit2,
                    Configuration(
                        strategy="combined", graceful_degradation=False
                    ),
                ).run()
        finally:
            chaos.deactivate()

    def test_memory_error_degrades_to_oom_record(self, clifford_pair):
        circuit1, circuit2 = clifford_pair
        chaos.activate(ChaosSpec(mode="memory_balloon", balloon_mb=16))
        try:
            result = EquivalenceCheckingManager(
                circuit1, circuit2, Configuration(strategy="combined")
            ).run()
        finally:
            chaos.deactivate()
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "out_of_memory"

    def test_success_leaves_no_failure_record(self, clifford_pair):
        circuit1, circuit2 = clifford_pair
        result = EquivalenceCheckingManager(
            circuit1, circuit2, Configuration(strategy="combined")
        ).run()
        assert result.failure is None


class TestConfigurationValidation:
    @pytest.mark.parametrize("timeout", [0, -1, -0.5, float("nan")])
    def test_non_positive_timeout_rejected(self, timeout):
        with pytest.raises(ValueError, match="timeout"):
            Configuration(timeout=timeout).validate()

    @pytest.mark.parametrize("timeout", ["10", True, [1]])
    def test_non_numeric_timeout_rejected(self, timeout):
        with pytest.raises((ValueError, TypeError)):
            Configuration(timeout=timeout).validate()

    def test_none_timeout_means_unlimited(self):
        Configuration(timeout=None).validate()

    @pytest.mark.parametrize("limit", [0, -64, 1.5, "256", True])
    def test_bad_memory_limit_rejected(self, limit):
        with pytest.raises((ValueError, TypeError)):
            Configuration(memory_limit_mb=limit).validate()

    def test_valid_memory_limit_accepted(self):
        Configuration(memory_limit_mb=512).validate()

    @pytest.mark.parametrize("retries", [-1, 0.5, "2", True])
    def test_bad_max_retries_rejected(self, retries):
        with pytest.raises((ValueError, TypeError)):
            Configuration(max_retries=retries).validate()

    def test_zero_retries_accepted(self):
        Configuration(max_retries=0).validate()

    @pytest.mark.parametrize("backoff", [0, -0.1, "fast", float("nan")])
    def test_bad_retry_backoff_rejected(self, backoff):
        with pytest.raises((ValueError, TypeError)):
            Configuration(retry_backoff=backoff).validate()
