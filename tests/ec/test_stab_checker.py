"""Tests for the Clifford stabilizer checker (`repro.ec.stab_checker`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager, stabilizer_check
from repro.ec.results import Equivalence
from tests.stab.test_tableau import clifford_circuit


class TestStabilizerCheck:
    def test_equivalent_clifford_pair(self):
        circuit = clifford_circuit(4, 25, seed=1)
        result = stabilizer_check(circuit, circuit.copy())
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )
        assert result.statistics["same_output_state"]

    def test_non_equivalent_clifford_pair(self):
        a = QuantumCircuit(2).cx(0, 1)
        b = QuantumCircuit(2).cx(1, 0)
        result = stabilizer_check(a, b)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_compiled_clifford_circuit(self):
        """Layout/permutation handling works for this checker too."""
        circuit = clifford_circuit(4, 20, seed=2)
        compiled = compile_circuit(
            circuit,
            line_architecture(6),
            optimization_level=0,
            decompose_swaps=True,
        )
        # the compiled circuit is in the u3/cx basis: u3 makes it
        # non-Clifford for the tableau -> NO_INFORMATION
        result = stabilizer_check(circuit, compiled)
        assert result.equivalence is Equivalence.NO_INFORMATION

    def test_routed_clifford_circuit(self):
        """Routing without basis rewrite keeps the circuit Clifford."""
        from repro.compile.routing import route_circuit

        circuit = clifford_circuit(4, 20, seed=3)
        routed = route_circuit(circuit, line_architecture(6))
        result = stabilizer_check(circuit, routed)
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )

    def test_non_clifford_gives_no_information(self):
        circuit = QuantumCircuit(1).t(0)
        result = stabilizer_check(circuit, circuit.copy())
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert "reason" in result.statistics

    def test_manager_dispatch(self):
        circuit = clifford_circuit(3, 15, seed=4)
        result = EquivalenceCheckingManager(
            circuit, circuit.copy(), Configuration(strategy="stabilizer")
        ).run()
        assert result.considered_equivalent
        assert result.strategy == "stabilizer"

    def test_cross_validation_with_dd(self):
        """The tableau verdict agrees with the DD verdict on Clifford pairs."""
        from repro.ec import alternating_dd_check

        for seed in range(5):
            a = clifford_circuit(3, 15, seed=seed)
            b = clifford_circuit(3, 15, seed=seed + 50)
            stab = stabilizer_check(a, b).considered_equivalent
            dd = alternating_dd_check(a, b).considered_equivalent
            assert stab == dd, seed
