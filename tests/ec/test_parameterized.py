"""Instantiation-agreement property suite for the parameterized checker.

The core contract: whatever the ``parameterized`` strategy concludes
about a symbolic pair must agree with the dense-unitary ground truth at
every seeded valuation — the symbolic paths claim *all* valuations, the
instantiation fallback claims the sampled ones, and a recorded
``NOT_EQUIVALENT`` witness valuation must actually separate the pair.
"""

import dataclasses
import math
import random

import pytest

from repro.circuit import (
    QuantumCircuit,
    circuit_unitary,
    unitaries_equivalent,
)
from repro.circuit.symbolic import (
    circuit_parameters,
    instantiate_circuit,
    symbol,
)
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.param_checker import (
    check_instantiated_random,
    draw_valuations,
    parameterized_check,
)
from repro.ec.permutations import to_logical_form
from repro.ec.results import Equivalence
from repro.errors import InvalidInput
from repro.fuzz.generator import generate_instance

_SEEDS = range(12)
_NUM_VALUATIONS = 8


def _dense_verdict(circuit1, circuit2, valuation):
    n = max(circuit1.num_qubits, circuit2.num_qubits)
    unitaries = []
    for circuit in (circuit1, circuit2):
        logical, _ = to_logical_form(
            instantiate_circuit(circuit, valuation), n
        )
        unitaries.append(circuit_unitary(logical))
    return unitaries_equivalent(*unitaries)


def _truth_valuations(pair):
    """The planted witness valuation first, then 8 seeded draws."""
    variables = tuple(
        sorted(
            set(circuit_parameters(pair.circuit1))
            | set(circuit_parameters(pair.circuit2))
        )
    )
    valuations = []
    planted = pair.witness.get("valuation")
    if isinstance(planted, dict):
        valuations.append(
            {name: float(planted.get(name, 0.0)) for name in variables}
        )
    valuations.extend(draw_valuations(variables, _NUM_VALUATIONS, seed=99))
    return valuations


def _dense_truth(pair):
    return all(
        _dense_verdict(pair.circuit1, pair.circuit2, valuation)
        for valuation in _truth_valuations(pair)
    )


def _run(pair, **overrides):
    config = Configuration(
        strategy="parameterized", timeout=30.0, seed=5, **overrides
    )
    manager = EquivalenceCheckingManager(pair.circuit1, pair.circuit2, config)
    return manager.run()


class TestInstantiationAgreement:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_symbolic_first_agrees_with_dense_truth(self, seed):
        _, pair = generate_instance(seed, family="parameterized")
        result = _run(pair)
        truth = _dense_truth(pair)
        if truth:
            assert result.equivalence is not Equivalence.NOT_EQUIVALENT
            assert result.considered_equivalent
        else:
            assert result.equivalence is Equivalence.NOT_EQUIVALENT

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_instantiate_only_agrees_with_dense_truth(self, seed):
        _, pair = generate_instance(seed, family="parameterized")
        result = _run(pair, parameterized_symbolic=False)
        truth = _dense_truth(pair)
        if truth:
            assert result.equivalence is not Equivalence.NOT_EQUIVALENT
            assert result.considered_equivalent
        else:
            assert result.equivalence is Equivalence.NOT_EQUIVALENT

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_neq_verdicts_carry_a_separating_witness(self, seed):
        _, pair = generate_instance(seed, family="parameterized")
        result = _run(pair)
        if result.equivalence is not Equivalence.NOT_EQUIVALENT:
            pytest.skip("pair is equivalent")
        stats = result.statistics["parameterized"]
        witness = stats["witness_valuation"]
        assert set(witness) == set(stats["variables"])
        assert not _dense_verdict(pair.circuit1, pair.circuit2, witness)


def _phase_poly_pair():
    """An {Rz, CX} pair the symbolic phase polynomial decides exactly."""
    theta = symbol("theta")
    phi = symbol("phi")
    a = QuantumCircuit(2, name="a")
    a.add("rz", [0], params=[theta])
    a.cx(0, 1)
    a.add("rz", [1], params=[2 * phi])
    a.cx(0, 1)
    b = QuantumCircuit(2, name="b")
    b.add("rz", [0], params=[theta / 2])
    b.add("rz", [0], params=[theta / 2])
    b.cx(0, 1)
    b.add("rz", [1], params=[2 * phi])
    b.cx(0, 1)
    return a, b


class TestParameterizedCheck:
    def test_symbolic_phase_polynomial_proves_equivalence(self):
        a, b = _phase_poly_pair()
        result = parameterized_check(a, b, Configuration(seed=0))
        assert result.considered_equivalent
        assert result.proven
        stats = result.statistics["parameterized"]
        assert stats["path"] == "phase_polynomial"

    def test_affine_mismatch_is_valuation_independent_neq(self):
        theta = symbol("theta")
        a = QuantumCircuit(2)
        a.add("rz", [0], params=[theta])
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.add("rz", [0], params=[theta])
        result = parameterized_check(a, b, Configuration(seed=0))
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        stats = result.statistics["parameterized"]
        assert "witness_valuation" in stats

    def test_coefficient_defect_caught_by_instantiation(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("ry", [0], params=[theta])
        b = QuantumCircuit(1)
        b.add("ry", [0], params=[2 * theta])
        result = parameterized_check(a, b, Configuration(seed=0))
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        stats = result.statistics["parameterized"]
        assert stats["path"] == "instantiation"
        assert not _dense_verdict(a, b, stats["witness_valuation"])

    def test_probably_equivalent_is_evidence_not_proof(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("ry", [0], params=[theta])
        a.add("h", [0])
        b = QuantumCircuit(1)
        b.add("ry", [0], params=[theta])
        b.add("h", [0])
        result = parameterized_check(
            a, b, Configuration(seed=0, parameterized_symbolic=False)
        )
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT
        assert result.considered_equivalent
        assert not result.proven

    def test_timeout_degrades_to_timeout_verdict(self):
        a, b = _phase_poly_pair()
        config = Configuration(
            strategy="parameterized", timeout=1e-9, seed=0
        )
        result = EquivalenceCheckingManager(a, b, config).run()
        assert result.equivalence is Equivalence.TIMEOUT


class TestCheckInstantiatedRandom:
    def test_all_positive_yields_probably_equivalent(self):
        a, b = _phase_poly_pair()
        verdict, stats = check_instantiated_random(
            a, b, Configuration(seed=1, num_instantiations=4)
        )
        assert verdict is Equivalence.PROBABLY_EQUIVALENT
        assert stats["instantiations_run"] == 4
        assert len(stats["outcomes"]) == 4

    def test_neq_short_circuits_with_witness(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("rx", [0], params=[theta])
        b = QuantumCircuit(1)
        b.add("rx", [0], params=[theta + 0.3])
        verdict, stats = check_instantiated_random(
            a, b, Configuration(seed=1, num_instantiations=6)
        )
        assert verdict is Equivalence.NOT_EQUIVALENT
        assert stats["witness_index"] == 0
        assert stats["instantiations_run"] == 1
        assert not _dense_verdict(a, b, stats["witness_valuation"])


class TestDrawValuations:
    def test_deterministic_and_in_range(self):
        first = draw_valuations(("a", "b"), 5, seed=3)
        second = draw_valuations(("a", "b"), 5, seed=3)
        assert first == second
        assert len(first) == 5
        for valuation in first:
            assert set(valuation) == {"a", "b"}
            for value in valuation.values():
                assert 0.0 <= value < 2 * math.pi

    def test_different_seeds_differ(self):
        assert draw_valuations(("a",), 3, seed=0) != draw_valuations(
            ("a",), 3, seed=1
        )


class TestDispatch:
    def test_concrete_pair_falls_through_to_combined(self):
        a = QuantumCircuit(1)
        a.add("h", [0])
        b = QuantumCircuit(1)
        b.add("h", [0])
        config = Configuration(strategy="parameterized", seed=0)
        result = EquivalenceCheckingManager(a, b, config).run()
        assert result.considered_equivalent
        assert result.strategy == "combined"

    def test_symbolic_pair_under_concrete_strategy_degrades(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("rz", [0], params=[theta])
        config = Configuration(strategy="zx", seed=0)
        result = EquivalenceCheckingManager(a, a.copy(), config).run()
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "invalid_input"

    def test_symbolic_pair_under_concrete_strategy_raises_strict(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("rz", [0], params=[theta])
        config = Configuration(
            strategy="combined", seed=0, graceful_degradation=False
        )
        with pytest.raises(InvalidInput):
            EquivalenceCheckingManager(a, a.copy(), config).run()

    def test_run_single_parameterized_override(self):
        theta = symbol("theta")
        a = QuantumCircuit(1)
        a.add("rz", [0], params=[theta])
        manager = EquivalenceCheckingManager(
            a, a.copy(), Configuration(seed=0)
        )
        result = manager.run_single("parameterized")
        assert result.considered_equivalent


class TestConfigurationKnobs:
    def test_defaults_validate(self):
        config = Configuration(strategy="parameterized")
        config.validate()
        assert config.num_instantiations == 8
        assert config.parameterized_symbolic is True
        assert config.instantiation_isolation is False

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "8"])
    def test_num_instantiations_validation(self, bad):
        with pytest.raises(ValueError):
            dataclasses.replace(
                Configuration(), num_instantiations=bad
            ).validate()

    @pytest.mark.parametrize(
        "field", ["parameterized_symbolic", "instantiation_isolation"]
    )
    def test_bool_knob_validation(self, field):
        with pytest.raises(ValueError):
            dataclasses.replace(Configuration(), **{field: "yes"}).validate()
