"""Tests for the equivalence-checking manager (`repro.ec.manager`)."""

import pytest

from repro import verify
from repro.circuit import QuantumCircuit
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence
from repro.bench.errors import remove_random_gate
from tests.conftest import random_circuit

ALL_STRATEGIES = ["construction", "alternating", "simulation", "zx", "combined"]


class TestStrategyDispatch:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_equivalent_pair(self, strategy):
        result = EquivalenceCheckingManager(
            ghz_example(),
            compiled_ghz_example(),
            Configuration(strategy=strategy, seed=1),
        ).run()
        assert result.considered_equivalent

    @pytest.mark.parametrize("strategy", ["alternating", "simulation", "combined"])
    def test_non_equivalent_pair(self, strategy):
        circuit = random_circuit(4, 25, seed=1)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=5)
        result = EquivalenceCheckingManager(
            circuit, broken, Configuration(strategy=strategy, seed=1)
        ).run()
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceCheckingManager(
                QuantumCircuit(1),
                QuantumCircuit(1),
                Configuration(strategy="magic"),
            )

    def test_invalid_oracle_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceCheckingManager(
                QuantumCircuit(1),
                QuantumCircuit(1),
                Configuration(oracle="psychic"),
            )


class TestCombinedStrategy:
    def test_early_exit_on_simulation_counterexample(self):
        circuit = random_circuit(4, 30, seed=2)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=3)
        result = EquivalenceCheckingManager(
            circuit, broken, Configuration(strategy="combined", seed=1)
        ).run()
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert result.strategy == "combined"
        # the falsifying simulation count is surfaced
        assert result.statistics["simulations_run"] >= 1

    def test_proof_comes_from_alternating(self):
        circuit = random_circuit(4, 20, seed=3)
        compiled = compile_circuit(circuit, line_architecture(6))
        result = EquivalenceCheckingManager(
            circuit, compiled, Configuration(strategy="combined", seed=1)
        ).run()
        assert result.proven
        assert result.considered_equivalent


class TestTimeout:
    def test_timeout_result(self):
        circuit = random_circuit(5, 60, seed=4)
        compiled = compile_circuit(circuit, line_architecture(7))
        result = EquivalenceCheckingManager(
            circuit,
            compiled,
            Configuration(strategy="combined", timeout=1e-4),
        ).run()
        assert result.equivalence is Equivalence.TIMEOUT
        assert not result.considered_equivalent
        assert not result.proven

    def test_zx_timeout(self):
        circuit = random_circuit(5, 60, seed=5)
        result = EquivalenceCheckingManager(
            circuit,
            circuit.copy(),
            Configuration(strategy="zx", timeout=1e-6),
        ).run()
        assert result.equivalence is Equivalence.TIMEOUT


class TestVerifyHelper:
    def test_package_level_verify(self):
        assert verify(ghz_example(), compiled_ghz_example()).considered_equivalent

    def test_verify_with_config(self):
        result = verify(
            ghz_example(),
            compiled_ghz_example(),
            Configuration(strategy="zx"),
        )
        assert result.considered_equivalent


class TestResultProperties:
    def test_result_string(self):
        result = verify(ghz_example(), compiled_ghz_example())
        text = str(result)
        assert "combined" in text

    def test_probably_equivalent_not_proven(self):
        circuit = random_circuit(3, 10, seed=6)
        result = EquivalenceCheckingManager(
            circuit, circuit.copy(), Configuration(strategy="simulation")
        ).run()
        assert result.considered_equivalent
        assert not result.proven
