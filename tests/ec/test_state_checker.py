"""Tests for state-preparation equivalence (`repro.ec.state_checker`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager, state_check
from repro.ec.results import Equivalence
from tests.conftest import random_circuit


class TestStateCheck:
    def test_same_circuit(self):
        circuit = random_circuit(3, 15, seed=1)
        result = state_check(circuit, circuit.copy())
        assert result.equivalence is Equivalence.EQUIVALENT
        assert result.statistics["same_canonical_node"]

    def test_different_preparations_of_same_state(self):
        """Unitarily different circuits preparing the same Bell state."""
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(1).cx(1, 0)
        unitary_result = EquivalenceCheckingManager(
            a, b, Configuration(strategy="alternating")
        ).run()
        assert unitary_result.equivalence is Equivalence.NOT_EQUIVALENT
        state_result = state_check(a, b)
        assert state_result.considered_equivalent

    def test_global_phase_distinguished_from_exact(self):
        a = QuantumCircuit(1).x(0)
        b = QuantumCircuit(1).z(0).x(0)  # |1> with no phase vs -? careful
        # X|0> = |1>; Z then X gives |1> as well (Z acts on |0> trivially)
        result = state_check(a, b)
        assert result.equivalence is Equivalence.EQUIVALENT
        c = QuantumCircuit(1).x(0).z(0)  # X then Z: -|1>
        result = state_check(a, c)
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )

    def test_different_states_rejected(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).h(0)
        result = state_check(a, b)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert result.statistics["fidelity"] == pytest.approx(0.5)

    def test_compiled_state_preparation(self):
        from repro.bench.algorithms import ghz_state

        original = ghz_state(5)
        compiled = compile_circuit(original, line_architecture(7))
        result = state_check(original, compiled)
        assert result.considered_equivalent

    def test_manager_dispatch(self):
        circuit = random_circuit(3, 10, seed=2)
        result = EquivalenceCheckingManager(
            circuit, circuit.copy(), Configuration(strategy="state")
        ).run()
        assert result.strategy == "state"
        assert result.considered_equivalent

    def test_state_dd_stays_compact_for_ghz(self):
        from repro.bench.algorithms import ghz_state

        result = state_check(ghz_state(16), ghz_state(16))
        assert result.statistics["max_state_dd_size"] <= 2 * 16
