"""Tests for permutation handling (`repro.ec.permutations`)."""

import random

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.circuit.unitary import permutation_matrix
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.permutations import reconstruct_swaps, to_logical_form
from tests.conftest import random_circuit


class TestReconstructSwaps:
    def test_cnot_triple_becomes_swap(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"swap": 1}

    def test_partial_triple_untouched(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"cx": 2}

    def test_same_direction_triple_untouched(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"cx": 3}

    def test_semantics_preserved(self):
        circuit = random_circuit(3, 10, seed=1).cx(0, 1).cx(1, 0).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert unitaries_equivalent(
            circuit_unitary(rebuilt), circuit_unitary(circuit)
        )

    def test_multiple_triples(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 0).cx(0, 1)
        circuit.h(2)
        circuit.cx(1, 2).cx(2, 1).cx(1, 2)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops()["swap"] == 2


class TestToLogicalForm:
    def test_plain_circuit_unchanged(self):
        # clifford_t circuits contain no SWAPs, so nothing is elided
        circuit = random_circuit(3, 10, seed=2, gate_set="clifford_t")
        logical, stats = to_logical_form(circuit)
        assert logical.operations == circuit.operations
        assert stats["correction_swaps"] == 0

    def test_plain_circuit_with_swaps_stays_equivalent(self):
        circuit = random_circuit(3, 10, seed=2)  # may contain SWAPs
        logical, _ = to_logical_form(circuit)
        assert unitaries_equivalent(
            circuit_unitary(logical), circuit_unitary(circuit)
        )

    def test_width_extension(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        logical, _ = to_logical_form(circuit, num_qubits=4)
        assert logical.num_qubits == 4

    def test_shrinking_rejected(self):
        with pytest.raises(ValueError):
            to_logical_form(QuantumCircuit(3), num_qubits=2)

    def test_swaps_elided(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        circuit.output_permutation = {0: 1, 1: 0}
        logical, stats = to_logical_form(circuit)
        assert stats["swaps_elided"] == 1
        assert len(logical) == 0  # swap matches declared permutation

    def test_correction_swaps_added_on_mismatch(self):
        circuit = QuantumCircuit(2).swap(0, 1)  # metadata claims identity
        logical, stats = to_logical_form(circuit)
        assert stats["correction_swaps"] == 1

    def test_logical_form_semantics(self):
        """P_out† U' P_in == U_logical for the compiled GHZ example."""
        compiled = compiled_ghz_example()
        logical, stats = to_logical_form(compiled)
        assert stats["swaps_reconstructed"] == 1
        expected = np.kron(np.eye(4), circuit_unitary(ghz_example()))
        assert unitaries_equivalent(circuit_unitary(logical), expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_compiled_circuit_logical_form_matches_original(self, seed):
        circuit = random_circuit(4, 15, seed=seed, gate_set="clifford_t")
        compiled = compile_circuit(circuit, line_architecture(6))
        logical, _ = to_logical_form(compiled)
        expected = np.kron(np.eye(4), circuit_unitary(circuit))
        assert unitaries_equivalent(circuit_unitary(logical), expected)

    def test_elision_disabled_keeps_swaps(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        circuit.output_permutation = {0: 1, 1: 0}
        logical, stats = to_logical_form(circuit, elide_permutations=False)
        assert stats["swaps_elided"] == 0
        # correction now undoes the declared output permutation explicitly
        assert unitaries_equivalent(
            circuit_unitary(logical), np.eye(4)
        )


#: Every proving strategy must fold layout metadata the same way.
_STRATEGIES = ("construction", "alternating", "zx", "simulation")


class TestPermutationsAcrossStrategies:
    """SWAP-relabeled and routed mutant pairs through every strategy.

    Regression net for the permutation-folding path: the metamorphic
    mutators declare layouts exactly the way the compiler does, so a
    checker that mishandles ``initial_layout`` / ``output_permutation``
    flips these known-equivalent pairs to NOT_EQUIVALENT.
    """

    def _check(self, circuit1, circuit2, strategy):
        config = Configuration(strategy=strategy, timeout=20.0, seed=0)
        return EquivalenceCheckingManager(circuit1, circuit2, config).run()

    @pytest.mark.parametrize("strategy", _STRATEGIES + ("stabilizer",))
    @pytest.mark.parametrize("seed", range(3))
    def test_swap_relabeled_pair_equivalent(self, strategy, seed):
        from repro.fuzz.mutators import swap_relabel

        base = random_circuit(4, 12, seed=seed, gate_set="clifford_t")
        if strategy == "stabilizer":
            base = QuantumCircuit(
                4,
                operations=[
                    op for op in base if op.name not in ("t", "tdg")
                ],
            )
        mutant, label, _ = swap_relabel(base, random.Random(seed))
        assert label == "equivalent"
        result = self._check(base, mutant, strategy)
        assert result.considered_equivalent, (
            f"{strategy} rejected a relabeled pair: {result.equivalence}"
        )

    @pytest.mark.parametrize("strategy", _STRATEGIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_routed_pair_with_final_layout_equivalent(self, strategy, seed):
        from repro.fuzz.mutators import routed_swaps

        base = random_circuit(4, 12, seed=seed, gate_set="clifford_t")
        mutant, label, witness = routed_swaps(base, random.Random(seed))
        assert label == "equivalent"
        assert witness["swaps"]
        result = self._check(base, mutant, strategy)
        assert result.considered_equivalent, (
            f"{strategy} rejected a routed pair: {result.equivalence}"
        )

    @pytest.mark.parametrize("strategy", _STRATEGIES)
    def test_compiled_circuit_with_final_layout(self, strategy):
        # The real compiler path: routing onto a line leaves both an
        # initial layout and a final-layout output permutation.
        circuit = random_circuit(4, 14, seed=9, gate_set="clifford_t")
        compiled = compile_circuit(circuit, line_architecture(5))
        assert compiled.initial_layout or compiled.output_permutation
        result = self._check(circuit, compiled, strategy)
        assert result.considered_equivalent

    def test_relabeled_pair_not_equivalent_without_metadata(self):
        # Sanity: stripping the declared layout must break equivalence,
        # proving the tests above exercise the folding path at all.
        from repro.fuzz.mutators import swap_relabel

        base = random_circuit(3, 10, seed=1, gate_set="clifford_t")
        mutant, _, _ = swap_relabel(base, random.Random(1))
        stripped = mutant.copy()
        stripped.initial_layout = {}
        stripped.output_permutation = {}
        result = self._check(base, stripped, "alternating")
        assert not result.considered_equivalent
