"""Tests for permutation handling (`repro.ec.permutations`)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.circuit.unitary import permutation_matrix
from repro.compile import compile_circuit, line_architecture
from repro.ec.permutations import reconstruct_swaps, to_logical_form
from tests.conftest import random_circuit


class TestReconstructSwaps:
    def test_cnot_triple_becomes_swap(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"swap": 1}

    def test_partial_triple_untouched(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"cx": 2}

    def test_same_direction_triple_untouched(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops() == {"cx": 3}

    def test_semantics_preserved(self):
        circuit = random_circuit(3, 10, seed=1).cx(0, 1).cx(1, 0).cx(0, 1)
        rebuilt = reconstruct_swaps(circuit)
        assert unitaries_equivalent(
            circuit_unitary(rebuilt), circuit_unitary(circuit)
        )

    def test_multiple_triples(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 0).cx(0, 1)
        circuit.h(2)
        circuit.cx(1, 2).cx(2, 1).cx(1, 2)
        rebuilt = reconstruct_swaps(circuit)
        assert rebuilt.count_ops()["swap"] == 2


class TestToLogicalForm:
    def test_plain_circuit_unchanged(self):
        # clifford_t circuits contain no SWAPs, so nothing is elided
        circuit = random_circuit(3, 10, seed=2, gate_set="clifford_t")
        logical, stats = to_logical_form(circuit)
        assert logical.operations == circuit.operations
        assert stats["correction_swaps"] == 0

    def test_plain_circuit_with_swaps_stays_equivalent(self):
        circuit = random_circuit(3, 10, seed=2)  # may contain SWAPs
        logical, _ = to_logical_form(circuit)
        assert unitaries_equivalent(
            circuit_unitary(logical), circuit_unitary(circuit)
        )

    def test_width_extension(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        logical, _ = to_logical_form(circuit, num_qubits=4)
        assert logical.num_qubits == 4

    def test_shrinking_rejected(self):
        with pytest.raises(ValueError):
            to_logical_form(QuantumCircuit(3), num_qubits=2)

    def test_swaps_elided(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        circuit.output_permutation = {0: 1, 1: 0}
        logical, stats = to_logical_form(circuit)
        assert stats["swaps_elided"] == 1
        assert len(logical) == 0  # swap matches declared permutation

    def test_correction_swaps_added_on_mismatch(self):
        circuit = QuantumCircuit(2).swap(0, 1)  # metadata claims identity
        logical, stats = to_logical_form(circuit)
        assert stats["correction_swaps"] == 1

    def test_logical_form_semantics(self):
        """P_out† U' P_in == U_logical for the compiled GHZ example."""
        compiled = compiled_ghz_example()
        logical, stats = to_logical_form(compiled)
        assert stats["swaps_reconstructed"] == 1
        expected = np.kron(np.eye(4), circuit_unitary(ghz_example()))
        assert unitaries_equivalent(circuit_unitary(logical), expected)

    @pytest.mark.parametrize("seed", range(4))
    def test_compiled_circuit_logical_form_matches_original(self, seed):
        circuit = random_circuit(4, 15, seed=seed, gate_set="clifford_t")
        compiled = compile_circuit(circuit, line_architecture(6))
        logical, _ = to_logical_form(compiled)
        expected = np.kron(np.eye(4), circuit_unitary(circuit))
        assert unitaries_equivalent(circuit_unitary(logical), expected)

    def test_elision_disabled_keeps_swaps(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        circuit.output_permutation = {0: 1, 1: 0}
        logical, stats = to_logical_form(circuit, elide_permutations=False)
        assert stats["swaps_elided"] == 0
        # correction now undoes the declared output permutation explicitly
        assert unitaries_equivalent(
            circuit_unitary(logical), np.eye(4)
        )
