"""The concurrent strategy portfolio (:mod:`repro.ec.portfolio`):
advisor seeding, deterministic winner attribution, fallback selection,
and the manager-level guarantees around racing."""

import pytest

from repro.analysis import estimate_cost, profile_gate_set, seed_portfolio
from repro.bench.algorithms import ghz_state, qft
from repro.compile import (
    compile_circuit,
    line_architecture,
    manhattan_architecture,
)
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.portfolio import (
    _select_fallback,
    loser_kill_codes,
    plan_portfolio,
    portfolio_winner,
)
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.errors import PortfolioDisagreement
from repro.harness.race import ChildOutcome

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
)


@pytest.fixture(scope="module")
def tiny_pair():
    original = ghz_state(6)
    compiled = compile_circuit(original, line_architecture(7))
    return original, compiled


def _portfolio_config(**overrides):
    options = dict(
        strategy="combined",
        portfolio=True,
        static_analysis=False,
        timeout=30.0,
        seed=0,
    )
    options.update(overrides)
    return Configuration(**options)


class TestWinnerAttribution:
    def test_zx_wins_the_compiled_ghz_cell(self):
        """Deterministic-seed winner attribution on a fixed Table-1 pair.

        On the compiled GHZ-16 cell the advisor launches ZX at t=0 and it
        proves equivalence up to global phase roughly an order of
        magnitude before any DD lane — the attribution is stable across
        runs (same seed, same plan, same margin)."""
        original = ghz_state(16)
        compiled = compile_circuit(original, manhattan_architecture())
        manager = EquivalenceCheckingManager(
            original, compiled, _portfolio_config()
        )
        result = manager.run()
        assert result.strategy == "portfolio"
        assert result.equivalence in POSITIVE
        assert portfolio_winner(result) == "zx"
        block = result.statistics["portfolio"]
        assert block["sound"] is True
        assert block["all_reaped"] is True
        assert block["perf"]["counters"]["portfolio.sound_wins"] == 1
        # Every loser was either killed with a recorded code or genuinely
        # completed/was never launched — nothing is unaccounted for.
        accounted = {"completed", "failed", "killed", "skipped"}
        assert {c["status"] for c in block["children"]} <= accounted
        for name, code in loser_kill_codes(result).items():
            assert name != "zx"
            assert code in ("loser", "budget", "deadline")

    def test_statistics_block_reports_the_plan(self, tiny_pair):
        manager = EquivalenceCheckingManager(
            *tiny_pair, _portfolio_config()
        )
        result = manager.run()
        block = result.statistics["portfolio"]
        planned = [slot["strategy"] for slot in block["plan"]]
        assert block["preferred_checker"] in planned
        assert "simulation" in planned
        assert block["winner"] in planned
        assert any("portfolio" in line for line in block["rationale"])


class TestPlanSeeding:
    @staticmethod
    def _plan_for(circuit1, circuit2, **config_overrides):
        config = _portfolio_config(**config_overrides)
        return plan_portfolio(circuit1, circuit2, config)

    def test_stabilizer_joins_only_clifford_pairs(self):
        clifford = ghz_state(6)
        clifford_plan = self._plan_for(clifford, clifford)
        strategies = [slot.strategy for slot in clifford_plan.slots]
        assert "stabilizer" in strategies

        non_clifford = qft(4)
        plan = self._plan_for(non_clifford, non_clifford)
        assert "stabilizer" not in [slot.strategy for slot in plan.slots]

    def test_two_zero_delay_lanes_then_head_start(self, tiny_pair):
        plan = self._plan_for(*tiny_pair, portfolio_head_start=0.5)
        delays = [slot.delay for slot in plan.slots]
        assert delays[:2] == [0.0, 0.0]
        assert all(delay == 0.5 for delay in delays[2:])
        # The predicted winner races from t=0 alongside the simulation
        # falsifier.
        front = {plan.slots[0].strategy, plan.slots[1].strategy}
        assert plan.preferred_checker in front
        assert "simulation" in front

    def test_seeder_never_drops_a_strategy(self, tiny_pair):
        profiles = tuple(profile_gate_set(c) for c in tiny_pair)
        estimate = estimate_cost(tiny_pair, profiles)
        plan = seed_portfolio(profiles, estimate)
        strategies = [slot.strategy for slot in plan.slots]
        assert sorted(strategies) == sorted(set(strategies))
        for required in ("alternating", "construction", "simulation", "zx"):
            assert required in strategies


class TestFallbackSelection:
    @staticmethod
    def _child(name, verdict):
        result = (
            None if verdict is None
            else EquivalenceCheckingResult(verdict, name, 0.0)
        )
        return ChildOutcome(
            name=name,
            status="completed" if result is not None else "killed",
            result=result,
        )

    def test_probabilistic_beats_no_information(self):
        assert _select_fallback([
            self._child("alternating", Equivalence.NO_INFORMATION),
            self._child("simulation", Equivalence.PROBABLY_EQUIVALENT),
        ]) == "simulation"

    def test_no_information_beats_timeout(self):
        assert _select_fallback([
            self._child("alternating", Equivalence.TIMEOUT),
            self._child("stabilizer", Equivalence.NO_INFORMATION),
        ]) == "stabilizer"

    def test_ties_break_on_completion_order(self):
        assert _select_fallback([
            self._child("zx", Equivalence.NO_INFORMATION),
            self._child("stabilizer", Equivalence.NO_INFORMATION),
        ]) == "zx"

    def test_no_survivors_means_no_fallback(self):
        assert _select_fallback([
            self._child("alternating", None),
            self._child("zx", None),
        ]) is None


class TestManagerIntegration:
    def test_run_single_leaves_configuration_untouched(self, tiny_pair):
        """Regression: ``run_single`` used to mutate the manager's own
        configuration; under the portfolio it must thread an explicit
        override instead."""
        config = _portfolio_config()
        manager = EquivalenceCheckingManager(*tiny_pair, config)
        result = manager.run_single("alternating")
        assert result.strategy == "alternating"
        assert manager.configuration is config
        assert manager.configuration.strategy == "combined"
        assert manager.configuration.portfolio is True
        # The full portfolio run still works afterwards.
        raced = manager.run()
        assert raced.strategy == "portfolio"
        assert raced.equivalence in POSITIVE

    def test_run_single_combined_keeps_the_race(self, tiny_pair):
        manager = EquivalenceCheckingManager(*tiny_pair, _portfolio_config())
        result = manager.run_single("combined")
        assert result.strategy == "portfolio"
        assert portfolio_winner(result) is not None

    def test_disagreement_is_never_degraded(self, tiny_pair, monkeypatch):
        """A cross-child contradiction must surface as a hard error, not
        be swallowed into a NO_INFORMATION result."""
        import repro.ec.portfolio as portfolio_module

        def exploding(*args, **kwargs):
            raise PortfolioDisagreement(
                "injected contradiction", positive="zx", negative="simulation"
            )

        monkeypatch.setattr(portfolio_module, "run_portfolio", exploding)
        manager = EquivalenceCheckingManager(*tiny_pair, _portfolio_config())
        with pytest.raises(PortfolioDisagreement):
            manager.run()

    def test_sequential_and_portfolio_agree_on_polarity(self, tiny_pair):
        sequential = EquivalenceCheckingManager(
            *tiny_pair,
            Configuration(strategy="combined", static_analysis=False,
                          timeout=30.0, seed=0),
        ).run()
        raced = EquivalenceCheckingManager(
            *tiny_pair, _portfolio_config()
        ).run()
        assert sequential.equivalence in POSITIVE
        assert raced.equivalence in POSITIVE
