"""Tests for the random-stimuli simulation checker (`repro.ec.sim_checker`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, simulation_check
from repro.ec.results import Equivalence
from repro.bench.errors import flip_random_cnot, remove_random_gate
from tests.conftest import random_circuit


class TestSimulationCheck:
    def test_equivalent_circuits_probably_equivalent(self):
        circuit = random_circuit(4, 20, seed=1)
        result = simulation_check(
            circuit, circuit.copy(), Configuration(seed=7)
        )
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT
        assert result.statistics["simulations_run"] == 16
        assert result.statistics["min_fidelity"] == pytest.approx(1.0)

    def test_compiled_circuit_accepted(self):
        circuit = random_circuit(4, 20, seed=2)
        compiled = compile_circuit(circuit, line_architecture(6))
        result = simulation_check(circuit, compiled, Configuration(seed=7))
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT

    def test_gate_missing_found_quickly(self):
        """Paper Section 6.2: errors show up within a few simulations."""
        circuit = random_circuit(4, 30, seed=3)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=3)
        result = simulation_check(circuit, broken, Configuration(seed=7))
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        # Batched mode simulates every stimulus but reports where the
        # first mismatch sat; the legacy loop stops there outright.
        mismatch = result.statistics.get(
            "first_mismatch", result.statistics["simulations_run"]
        )
        assert mismatch <= 4

    def test_flipped_cnot_found(self):
        circuit = random_circuit(4, 30, seed=4)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = flip_random_cnot(compiled, seed=4)
        result = simulation_check(circuit, broken, Configuration(seed=7))
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_number_of_simulations_respected(self):
        circuit = random_circuit(3, 10, seed=5)
        config = Configuration(num_simulations=3, seed=1)
        result = simulation_check(circuit, circuit.copy(), config)
        assert result.statistics["simulations_run"] == 3

    def test_seed_reproducibility(self):
        circuit = random_circuit(4, 20, seed=6)
        broken = remove_random_gate(circuit, seed=0)
        first = simulation_check(circuit, broken, Configuration(seed=42))
        second = simulation_check(circuit, broken, Configuration(seed=42))
        assert (
            first.statistics["simulations_run"]
            == second.statistics["simulations_run"]
        )

    def test_global_phase_difference_not_flagged(self):
        a = QuantumCircuit(1).x(0).z(0)
        b = QuantumCircuit(1).z(0).x(0)
        result = simulation_check(a, b, Configuration(seed=1))
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT

    def test_stimuli_digest_reproducible(self):
        """Same seed ⇒ byte-identical stimuli sequence (and verdict)."""
        circuit = random_circuit(4, 20, seed=8)
        first = simulation_check(circuit, circuit.copy(), Configuration(seed=11))
        second = simulation_check(circuit, circuit.copy(), Configuration(seed=11))
        assert (
            first.statistics["stimuli_digest"]
            == second.statistics["stimuli_digest"]
        )
        assert first.equivalence is second.equivalence

    def test_stimuli_digest_differs_across_seeds(self):
        circuit = random_circuit(4, 20, seed=8)
        a = simulation_check(circuit, circuit.copy(), Configuration(seed=1))
        b = simulation_check(circuit, circuit.copy(), Configuration(seed=2))
        assert a.statistics["stimuli_digest"] != b.statistics["stimuli_digest"]

    @pytest.mark.parametrize(
        "stimuli", ("classical", "local_quantum", "global_quantum")
    )
    def test_stimuli_digest_reproducible_per_type(self, stimuli):
        circuit = random_circuit(3, 12, seed=9)
        config = Configuration(seed=5, stimuli_type=stimuli, num_simulations=4)
        first = simulation_check(circuit, circuit.copy(), config)
        second = simulation_check(circuit, circuit.copy(), config)
        assert (
            first.statistics["stimuli_digest"]
            == second.statistics["stimuli_digest"]
        )

    def test_stimuli_digest_identical_under_isolation(self):
        """The reproducibility contract holds across process boundaries:
        an in-process run and a sandboxed subprocess run with the same
        seed must report the same digest and verdict."""
        from repro.harness import run_check

        circuit = random_circuit(3, 15, seed=10)
        config = Configuration(strategy="simulation", seed=21, timeout=30.0)
        inline = simulation_check(circuit, circuit.copy(), config)
        isolated = run_check(circuit, circuit.copy(), config, isolate=True)
        assert isolated.failure is None
        assert (
            inline.statistics["stimuli_digest"]
            == isolated.statistics["stimuli_digest"]
        )
        assert inline.equivalence is isolated.equivalence

    def test_phase_error_invisible_to_classical_stimuli(self):
        """A diagonal error after the final H layer can hide from basis
        states only if it commutes with them; a Z on a plain wire does
        not change basis-state amplitudes' magnitude — documenting the
        known blind spot of purely classical stimuli."""
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).z(0)
        result = simulation_check(a, b, Configuration(seed=1))
        # |<x|Z|x>| = 1 for basis states: simulation cannot distinguish.
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT
