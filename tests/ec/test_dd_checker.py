"""Tests for the DD-based checkers (`repro.ec.dd_checker`)."""

import time

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.compile import compile_circuit, line_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.ec import (
    AlternatingChecker,
    Configuration,
    ConstructionChecker,
    alternating_dd_check,
    construction_dd_check,
)
from repro.ec.results import Equivalence, EquivalenceCheckingTimeout
from repro.bench.errors import flip_random_cnot, remove_random_gate
from tests.conftest import random_circuit

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
)


class TestConstructionChecker:
    def test_identical_circuits(self):
        circuit = random_circuit(3, 15, seed=1)
        result = construction_dd_check(circuit, circuit.copy())
        assert result.equivalence is Equivalence.EQUIVALENT

    def test_global_phase_detected(self):
        a = QuantumCircuit(1).x(0).z(0)
        b = QuantumCircuit(1).z(0).x(0)  # differs by -1
        result = construction_dd_check(a, b)
        assert result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE

    def test_not_equivalent(self):
        a = QuantumCircuit(2).cx(0, 1)
        b = QuantumCircuit(2).cx(1, 0)
        result = construction_dd_check(a, b)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_statistics_reported(self):
        circuit = random_circuit(3, 10, seed=2)
        result = construction_dd_check(circuit, circuit.copy())
        assert result.statistics["dd_size_1"] >= 1
        assert result.strategy == "construction"


class TestAlternatingChecker:
    @pytest.mark.parametrize("oracle", ["naive", "proportional", "lookahead"])
    def test_compiled_ghz(self, oracle):
        result = alternating_dd_check(
            ghz_example(),
            compiled_ghz_example(),
            Configuration(strategy="alternating", oracle=oracle),
        )
        assert result.equivalence in POSITIVE

    @pytest.mark.parametrize("oracle", ["naive", "proportional", "lookahead"])
    @pytest.mark.parametrize("seed", range(2))
    def test_compiled_random_circuits(self, oracle, seed):
        circuit = random_circuit(4, 15, seed=seed)
        compiled = compile_circuit(circuit, line_architecture(6))
        result = alternating_dd_check(
            circuit, compiled, Configuration(oracle=oracle)
        )
        assert result.equivalence in POSITIVE

    def test_optimized_circuits(self):
        circuit = random_circuit(4, 25, seed=4)
        lowered = decompose_to_basis(circuit)
        optimized = optimize_circuit(lowered, level=2)
        result = alternating_dd_check(lowered, optimized)
        assert result.equivalence in POSITIVE

    def test_gate_missing_detected(self):
        circuit = random_circuit(4, 25, seed=5)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=1)
        result = alternating_dd_check(circuit, broken)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_flipped_cnot_detected(self):
        circuit = random_circuit(4, 25, seed=6)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = flip_random_cnot(compiled, seed=2)
        result = alternating_dd_check(circuit, broken)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_alternation_keeps_dd_small(self):
        """Fig. 4's point: the product stays near identity throughout."""
        circuit = random_circuit(4, 30, seed=7, gate_set="clifford_t")
        compiled = compile_circuit(circuit, line_architecture(6))
        config = Configuration(strategy="alternating", trace_sizes=True)
        result = alternating_dd_check(circuit, compiled, config)
        assert result.equivalence in POSITIVE
        trace = result.statistics["dd_size_trace"]
        assert trace  # recorded
        assert result.statistics["max_dd_size"] <= 64

    def test_construction_grows_larger_than_alternating(self):
        """The alternating scheme dominates naive construction in size."""
        circuit = random_circuit(5, 40, seed=8)
        compiled = compile_circuit(circuit, line_architecture(7))
        config = Configuration(trace_sizes=True)
        alternating = AlternatingChecker(circuit, compiled, config).run()
        construction = ConstructionChecker(circuit, compiled, config).run()
        assert (
            alternating.statistics["max_dd_size"]
            <= construction.statistics["max_dd_size"]
        )

    def test_hilbert_schmidt_statistic(self):
        circuit = random_circuit(3, 10, seed=9)
        result = alternating_dd_check(circuit, circuit.copy())
        assert result.statistics["hilbert_schmidt_fidelity"] == pytest.approx(
            1.0
        )

    def test_timeout_raised(self):
        circuit = random_circuit(4, 50, seed=10)
        checker = AlternatingChecker(circuit, circuit.copy())
        with pytest.raises(EquivalenceCheckingTimeout):
            checker.run(deadline=time.monotonic() - 1.0)

    def test_width_mismatch_handled(self):
        narrow = QuantumCircuit(2).h(0).cx(0, 1)
        wide = QuantumCircuit(4).h(0).cx(0, 1)
        result = alternating_dd_check(narrow, wide)
        assert result.equivalence in POSITIVE


class TestCompilationFlowOracle:
    def test_verifies_compiled_circuits(self):
        from repro.bench.algorithms import grover

        original = grover(4)
        compiled = compile_circuit(original, line_architecture(6))
        result = alternating_dd_check(
            original,
            compiled,
            Configuration(strategy="alternating", oracle="compilation_flow"),
        )
        assert result.equivalence in POSITIVE

    def test_keeps_dd_at_least_as_small_as_naive(self):
        from repro.bench.algorithms import qft

        original = qft(5)
        compiled = compile_circuit(original, line_architecture(7))
        sizes = {}
        for oracle in ("naive", "compilation_flow"):
            config = Configuration(
                strategy="alternating", oracle=oracle, trace_sizes=True
            )
            result = alternating_dd_check(original, compiled, config)
            assert result.equivalence in POSITIVE
            sizes[oracle] = result.statistics["max_dd_size"]
        assert sizes["compilation_flow"] <= sizes["naive"]

    def test_detects_errors_too(self):
        circuit = random_circuit(4, 20, seed=12)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=3)
        result = alternating_dd_check(
            circuit,
            broken,
            Configuration(strategy="alternating", oracle="compilation_flow"),
        )
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
