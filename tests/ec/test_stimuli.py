"""Tests for random stimuli generation (`repro.ec.stimuli`)."""

import random

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, statevector
from repro.ec import Configuration, simulation_check
from repro.ec.results import Equivalence
from repro.ec.stimuli import (
    STIMULI_TYPES,
    classical_stimulus,
    generate_stimulus,
    global_quantum_stimulus,
    local_quantum_stimulus,
)


class TestGenerators:
    def test_classical_is_basis_state(self):
        rng = random.Random(3)
        state = statevector(classical_stimulus(4, 4, rng))
        probabilities = np.abs(state) ** 2
        assert np.max(probabilities) == pytest.approx(1.0)

    def test_classical_respects_data_qubits(self):
        rng = random.Random(1)
        for _ in range(10):
            circuit = classical_stimulus(6, 3, rng)
            assert all(op.targets[0] < 3 for op in circuit)

    def test_local_is_product_state(self):
        """Every qubit's reduced state stays pure (product structure)."""
        rng = random.Random(5)
        state = statevector(local_quantum_stimulus(3, 3, rng)).reshape(
            2, 2, 2
        )
        # Schmidt rank across every bipartition must be 1
        for axis in range(3):
            matrix = np.moveaxis(state, axis, 0).reshape(2, 4)
            singular_values = np.linalg.svd(matrix, compute_uv=False)
            assert singular_values[1] == pytest.approx(0.0, abs=1e-12)

    def test_global_is_normalized_and_touches_all(self):
        rng = random.Random(7)
        circuit = global_quantum_stimulus(5, 5, rng)
        state = statevector(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0)
        # the CNOT tree spans all data qubits
        assert circuit.count_ops().get("cx", 0) == 4

    def test_generate_dispatch(self):
        rng = random.Random(0)
        for kind in STIMULI_TYPES:
            circuit = generate_stimulus(kind, 3, 3, rng)
            assert circuit.num_qubits == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_stimulus("telepathic", 2, 2)

    def test_deterministic_with_seeded_rng(self):
        a = generate_stimulus("global_quantum", 4, 4, random.Random(9))
        b = generate_stimulus("global_quantum", 4, 4, random.Random(9))
        assert a.operations == b.operations


class TestStimuliPower:
    """The discriminating-power hierarchy from reference [45]."""

    def test_phase_error_invisible_to_classical(self):
        """A bare Z error never changes basis-state amplitudes."""
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).z(0)
        result = simulation_check(
            a, b, Configuration(stimuli_type="classical", seed=0)
        )
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT

    @pytest.mark.parametrize("kind", ["local_quantum", "global_quantum"])
    def test_phase_error_caught_by_quantum_stimuli(self, kind):
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).z(0)
        result = simulation_check(
            a, b, Configuration(stimuli_type=kind, seed=0)
        )
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    @pytest.mark.parametrize("kind", STIMULI_TYPES)
    def test_equivalent_circuits_pass_all_kinds(self, kind):
        from tests.conftest import random_circuit

        circuit = random_circuit(3, 15, seed=4)
        result = simulation_check(
            circuit,
            circuit.copy(),
            Configuration(stimuli_type=kind, num_simulations=4, seed=0),
        )
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT

    @pytest.mark.parametrize("kind", STIMULI_TYPES)
    def test_bitflip_error_caught_by_all_kinds(self, kind):
        from tests.conftest import random_circuit

        circuit = random_circuit(3, 15, seed=5)
        broken = circuit.copy().x(1)
        result = simulation_check(
            circuit, broken, Configuration(stimuli_type=kind, seed=0)
        )
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_invalid_type_rejected_by_configuration(self):
        with pytest.raises(ValueError):
            Configuration(stimuli_type="psychic").validate()
