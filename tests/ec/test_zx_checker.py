"""Tests for the ZX-based checker (`repro.ec.zx_checker`)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.circuit import compiled_ghz_example, ghz_example
from repro.compile import compile_circuit, line_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.ec import Configuration, zx_check
from repro.ec.results import Equivalence
from repro.bench.errors import flip_random_cnot, remove_random_gate
from tests.conftest import random_circuit


class TestZXCheck:
    def test_compiled_ghz(self):
        """Paper Example 7: the composed diagram reduces to the expected
        permutation, proving equivalence."""
        result = zx_check(ghz_example(), compiled_ghz_example())
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )
        assert result.statistics["spiders_remaining"] == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_compiled_random_circuits(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        compiled = compile_circuit(circuit, line_architecture(6))
        result = zx_check(circuit, compiled)
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )

    def test_optimized_circuits(self):
        circuit = random_circuit(4, 25, seed=4)
        lowered = decompose_to_basis(circuit)
        optimized = optimize_circuit(lowered, level=2)
        result = zx_check(lowered, optimized)
        assert (
            result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )

    def test_gate_missing_gives_no_information(self):
        """Section 6.2: a stuck reduction is an indication, not a proof."""
        circuit = random_circuit(4, 25, seed=5)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = remove_random_gate(compiled, seed=1)
        result = zx_check(circuit, broken)
        assert result.equivalence in (
            Equivalence.NO_INFORMATION,
            Equivalence.NOT_EQUIVALENT,  # residual permutation case
        )
        assert result.equivalence is not Equivalence.EQUIVALENT
        assert (
            result.equivalence
            is not Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
        )

    def test_flipped_cnot_not_accepted(self):
        circuit = random_circuit(4, 25, seed=6)
        compiled = compile_circuit(circuit, line_architecture(6))
        broken = flip_random_cnot(compiled, seed=2)
        result = zx_check(circuit, broken)
        assert result.equivalence in (
            Equivalence.NO_INFORMATION,
            Equivalence.NOT_EQUIVALENT,
        )

    def test_wrong_permutation_is_not_equivalent(self):
        a = QuantumCircuit(2)  # identity
        b = QuantumCircuit(2).swap(0, 1)  # claims identity metadata
        result = zx_check(a, b, Configuration(elide_permutations=False))
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_statistics(self):
        circuit = random_circuit(3, 15, seed=7)
        result = zx_check(circuit, circuit.copy())
        assert result.statistics["initial_spiders"] > 0
        assert result.statistics["zx_rewrites"] > 0
        assert result.strategy == "zx"

    def test_spiders_never_increase(self):
        """The paper's claim: diagram size is bounded by the input."""
        circuit = random_circuit(4, 30, seed=8, gate_set="rotations")
        result = zx_check(circuit, circuit.copy())
        assert (
            result.statistics["spiders_remaining"]
            <= result.statistics["initial_spiders"]
        )
