"""Tests for the observability layer (`repro.perf`).

Covers the :class:`PerfCounters` primitive, the package statistics
snapshot, and the surfacing of both through checker results and the CLI.
"""

from __future__ import annotations

import pytest

from repro.bench.algorithms import ghz_state
from repro.dd import DDPackage
from repro.dd.gates import circuit_dd, simulate_circuit_dd
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.perf import PerfCounters, package_statistics
from tests.conftest import random_circuit


class TestPerfCounters:
    def test_phase_accumulates(self):
        perf = PerfCounters()
        with perf.phase("work"):
            pass
        first = perf.phase_seconds["work"]
        with perf.phase("work"):
            sum(range(1000))
        assert perf.phase_seconds["work"] >= first
        assert set(perf.phase_seconds) == {"work"}

    def test_phase_records_on_exception(self):
        perf = PerfCounters()
        with pytest.raises(RuntimeError):
            with perf.phase("failing"):
                raise RuntimeError("boom")
        assert "failing" in perf.phase_seconds

    def test_count(self):
        perf = PerfCounters()
        perf.count("gate_applications")
        perf.count("gate_applications", 4)
        assert perf.counters == {"gate_applications": 5}

    def test_as_dict_shape(self):
        perf = PerfCounters()
        with perf.phase("a"):
            pass
        out = perf.as_dict()
        assert set(out) == {"phase_seconds"}
        assert isinstance(out["phase_seconds"]["a"], float)
        perf.count("n", 3)
        out = perf.as_dict()
        assert out["counters"] == {"n": 3}


class TestPackageStatistics:
    def test_snapshot_keys(self):
        pkg = DDPackage()
        circuit_dd(pkg, random_circuit(4, 20, seed=0))
        simulate_circuit_dd(pkg, random_circuit(4, 10, seed=1))
        stats = package_statistics(pkg)
        assert set(stats) == {
            "compute_tables",
            "complex_table",
            "unique_matrix_nodes",
            "unique_vector_nodes",
            "matrix_nodes_created",
            "vector_nodes_created",
        }
        assert stats["matrix_nodes_created"] > 0
        assert stats["vector_nodes_created"] > 0
        assert stats["unique_matrix_nodes"] <= stats["matrix_nodes_created"]
        assert set(stats["complex_table"]) == {"hits", "misses", "size"}
        # Direct kernels were exercised, so their caches saw traffic.
        tables = stats["compute_tables"]
        assert tables["apply_left"]["misses"] > 0
        assert tables["apply_vec"]["misses"] > 0

    def test_nodes_created_counts_unique_table_misses_only(self):
        pkg = DDPackage()
        circuit = random_circuit(3, 10, seed=5)
        circuit_dd(pkg, circuit)
        created = pkg.matrix_nodes_created
        # Rebuilding the same circuit hits the unique table throughout.
        pkg.clear_compute_tables()
        circuit_dd(pkg, circuit)
        assert pkg.matrix_nodes_created == created


CHECKER_CASES = [
    ("construction", {"construction", "verdict"}),
    ("alternating", {"schedule", "alternation", "verdict"}),
    ("simulation", {"stimulus_preparation", "simulation", "fidelity"}),
]


class TestCheckerStatistics:
    @pytest.mark.parametrize("strategy,expected_phases", CHECKER_CASES)
    def test_result_carries_perf_block(self, strategy, expected_phases):
        circuit = ghz_state(4)
        config = Configuration(strategy=strategy, seed=0, num_simulations=2)
        result = EquivalenceCheckingManager(circuit, circuit, config).run()
        assert "perf" in result.statistics
        assert "complex_table" in result.statistics
        perf = result.statistics["perf"]
        assert expected_phases <= set(perf["phase_seconds"])
        assert "compute_tables" in perf
        assert perf["unique_matrix_nodes"] >= 0

    def test_alternating_counts_gate_applications(self):
        circuit = ghz_state(4)
        config = Configuration(strategy="alternating", seed=0)
        result = EquivalenceCheckingManager(circuit, circuit, config).run()
        counters = result.statistics["perf"]["counters"]
        assert counters["gate_applications"] == 2 * len(circuit)

    def test_legacy_and_direct_checkers_agree(self):
        circuit = ghz_state(5)
        results = {}
        for direct in (True, False):
            config = Configuration(
                strategy="alternating", seed=0, direct_application=direct
            )
            results[direct] = EquivalenceCheckingManager(
                circuit, circuit, config
            ).run()
        assert results[True].equivalence == results[False].equivalence
        assert (
            results[True].statistics["max_dd_size"]
            == results[False].statistics["max_dd_size"]
        )


class TestCliSurfacing:
    @pytest.fixture
    def qasm_file(self, tmp_path):
        from repro.circuit import circuit_to_qasm

        path = tmp_path / "ghz.qasm"
        path.write_text(circuit_to_qasm(ghz_state(3)))
        return path

    def test_verbose_prints_nested_perf_statistics(self, qasm_file, capsys):
        from repro.cli import main

        code = main([
            "verify", str(qasm_file), str(qasm_file),
            "--strategy", "alternating", "-v",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perf:" in out
        assert "phase_seconds:" in out
        assert "complex_table:" in out
        assert "apply_left:" in out

    def test_legacy_kernels_flag(self, qasm_file):
        from repro.cli import main

        code = main([
            "verify", str(qasm_file), str(qasm_file),
            "--strategy", "alternating", "--legacy-kernels",
        ])
        assert code == 0

    def test_compute_table_size_flag(self, qasm_file):
        from repro.cli import main

        for spec in ("64", "0"):  # bounded and unbounded
            code = main([
                "verify", str(qasm_file), str(qasm_file),
                "--strategy", "construction", "--compute-table-size", spec,
            ])
            assert code == 0
