"""Tier-1 smoke benchmark for the DD fast-path kernels.

Marked ``bench_smoke`` so it can be selected alone::

    PYTHONPATH=src python -m pytest -m bench_smoke -q

It is deliberately tiny (well under 5 seconds) — the full baseline
comparison lives in ``benchmarks/bench_dd_kernels.py``, which writes
``BENCH_dd_kernels.json``.  Here we only guard the invariants the
benchmark relies on: the direct and legacy kernels agree on a compiled
pair, and the direct path stays fast enough to run in tier-1.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.algorithms import ghz_state
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
)


@pytest.mark.bench_smoke
def test_dd_kernel_smoke():
    original = ghz_state(8)
    compiled = compile_circuit(original, line_architecture(10))

    verdicts = {}
    elapsed = {}
    for label, direct in (("direct", True), ("legacy", False)):
        config = Configuration(
            strategy="alternating", seed=0, direct_application=direct
        )
        start = time.perf_counter()
        result = EquivalenceCheckingManager(original, compiled, config).run()
        elapsed[label] = time.perf_counter() - start
        verdicts[label] = result.equivalence
        assert result.equivalence in POSITIVE, label

    assert verdicts["direct"] == verdicts["legacy"]
    # Generous bound: this pair takes ~0.1 s; 5 s means something broke.
    assert elapsed["direct"] < 5.0


@pytest.mark.bench_smoke
def test_dd_kernel_smoke_detects_error():
    """The fast path must still catch an injected error."""
    from repro.bench.errors import remove_random_gate

    original = ghz_state(8)
    compiled = compile_circuit(original, line_architecture(10))
    broken = remove_random_gate(compiled, seed=0)

    config = Configuration(strategy="alternating", seed=0)
    result = EquivalenceCheckingManager(original, broken, config).run()
    assert result.equivalence is Equivalence.NOT_EQUIVALENT
