"""Tier-1 smoke benchmarks for the DD fast-path kernels and ZX engines.

Marked ``bench_smoke`` so they can be selected alone::

    PYTHONPATH=src python -m pytest -m bench_smoke -q

They are deliberately tiny (well under 5 seconds) — the full baseline
comparisons live in ``benchmarks/bench_dd_kernels.py`` and
``benchmarks/bench_zx_simplify.py``, which write
``BENCH_dd_kernels.json`` / ``BENCH_zx_simplify.json``.  Here we only
guard the invariants the benchmarks rely on: the fast and legacy paths
agree on a small pair, and the fast paths stay fast enough for tier-1.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.algorithms import ghz_state
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
)


@pytest.mark.bench_smoke
def test_dd_kernel_smoke():
    original = ghz_state(8)
    compiled = compile_circuit(original, line_architecture(10))

    verdicts = {}
    elapsed = {}
    for label, direct in (("direct", True), ("legacy", False)):
        config = Configuration(
            strategy="alternating", seed=0, direct_application=direct
        )
        start = time.perf_counter()
        result = EquivalenceCheckingManager(original, compiled, config).run()
        elapsed[label] = time.perf_counter() - start
        verdicts[label] = result.equivalence
        assert result.equivalence in POSITIVE, label

    assert verdicts["direct"] == verdicts["legacy"]
    # Generous bound: this pair takes ~0.1 s; 5 s means something broke.
    assert elapsed["direct"] < 5.0


@pytest.mark.bench_smoke
def test_dd_kernel_smoke_detects_error():
    """The fast path must still catch an injected error."""
    from repro.bench.errors import remove_random_gate

    original = ghz_state(8)
    compiled = compile_circuit(original, line_architecture(10))
    broken = remove_random_gate(compiled, seed=0)

    config = Configuration(strategy="alternating", seed=0)
    result = EquivalenceCheckingManager(original, broken, config).run()
    assert result.equivalence is Equivalence.NOT_EQUIVALENT


@pytest.mark.bench_smoke
def test_batched_simulation_smoke():
    """Batched array-engine simulation on a compiled GHZ pair must not
    be slower than the per-stimulus object-engine loop, and both must
    consume the byte-identical stimulus sequence (same sha256 digest)."""
    from repro.bench.algorithms import ghz_state as ghz
    from repro.compile import manhattan_architecture

    original = ghz(16)
    compiled = compile_circuit(original, manhattan_architecture())

    elapsed = {}
    digests = {}
    verdicts = {}
    for label, array_dd in (("legacy", False), ("batched", True)):
        config = Configuration(
            strategy="simulation", seed=0, num_simulations=8,
            array_dd=array_dd,
        )
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            result = EquivalenceCheckingManager(
                original, compiled, config
            ).run()
            best = min(best, time.perf_counter() - start)
        elapsed[label] = best
        digests[label] = result.statistics["stimuli_digest"]
        verdicts[label] = result.equivalence
        assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT, label

    assert digests["batched"] == digests["legacy"]
    assert verdicts["batched"] == verdicts["legacy"]
    # The array kernels win this cell ~2.4x; equality with a small
    # scheduling allowance still catches a batching regression.
    assert elapsed["batched"] <= elapsed["legacy"] * 1.1 + 0.05
    counters = result.statistics["perf"]["counters"]
    assert counters.get("dd.batch_width") == 8


@pytest.mark.bench_smoke
def test_zx_simplify_smoke():
    """Incremental and legacy ZX engines agree end-to-end and stay fast."""
    from repro.bench.algorithms import qft

    original = qft(5)

    verdicts = {}
    spiders = {}
    elapsed = {}
    for label, incremental in (("incremental", True), ("legacy", False)):
        config = Configuration(
            strategy="zx", seed=0, incremental_zx=incremental
        )
        start = time.perf_counter()
        result = EquivalenceCheckingManager(original, original, config).run()
        elapsed[label] = time.perf_counter() - start
        verdicts[label] = result.equivalence
        spiders[label] = result.statistics["spiders_remaining"]
        assert result.equivalence in POSITIVE, label
        assert result.statistics["zx_engine"] == label
        counters = result.statistics["perf"]["counters"]
        assert counters.get("zx.rounds", 0) >= 1, label

    assert verdicts["incremental"] == verdicts["legacy"]
    assert spiders["incremental"] == spiders["legacy"] == 0
    # Generous bound: this pair takes ~0.05 s; 5 s means something broke.
    assert elapsed["incremental"] < 5.0


@pytest.mark.bench_smoke
def test_isolation_overhead_smoke():
    """Sandboxed execution agrees with in-process and its overhead stays
    bounded: a fork + pipe round-trip costs tens of milliseconds, not
    multiples of the check itself."""
    from repro.harness import run_check

    original = ghz_state(6)
    compiled = compile_circuit(original, line_architecture(8))
    config = Configuration(strategy="combined", seed=0, timeout=30)

    start = time.perf_counter()
    in_process = EquivalenceCheckingManager(original, compiled, config).run()
    in_process_seconds = time.perf_counter() - start

    start = time.perf_counter()
    isolated = run_check(original, compiled, config, isolate=True)
    isolated_seconds = time.perf_counter() - start

    assert isolated.equivalence == in_process.equivalence
    assert isolated.failure is None
    # Generous bound: sandbox setup is ~0.1 s on this instance.  A 10x
    # factor plus a 2 s fixed allowance means containment went wrong
    # (e.g. spawn instead of fork, or a serialization blowup).
    assert isolated_seconds < in_process_seconds * 10 + 2.0
    overhead = isolated.statistics["isolation"]["overhead_seconds"]
    assert 0 <= overhead < 2.0


@pytest.mark.bench_smoke
def test_portfolio_overhead_smoke():
    """Racing a trivial pair must stay within a fixed multiple of the
    sequential combined schedule: the portfolio's value is on expensive
    cells, but its fork/stagger overhead on cheap ones has to stay
    bounded or `--portfolio` would tax every small instance."""
    from repro.ec.portfolio import portfolio_winner

    original = ghz_state(6)
    compiled = compile_circuit(original, line_architecture(8))

    elapsed = {}
    verdicts = {}
    for label, portfolio in (("sequential", False), ("portfolio", True)):
        config = Configuration(
            strategy="combined", portfolio=portfolio,
            static_analysis=False, timeout=30.0, seed=0,
        )
        start = time.perf_counter()
        result = EquivalenceCheckingManager(original, compiled, config).run()
        elapsed[label] = time.perf_counter() - start
        verdicts[label] = result.equivalence
        assert result.equivalence in POSITIVE, label

    raced = EquivalenceCheckingManager(
        original, compiled,
        Configuration(strategy="combined", portfolio=True,
                      static_analysis=False, timeout=30.0, seed=0),
    ).run()
    assert portfolio_winner(raced) is not None
    assert raced.statistics["portfolio"]["all_reaped"] is True
    # Fixed multiple plus a fork allowance: the sequential arm finishes
    # this pair in ~0.05 s, the race in ~0.2 s.  15x + 2 s means the
    # racer regressed into something pathological.
    assert elapsed["portfolio"] < elapsed["sequential"] * 15 + 2.0


@pytest.mark.bench_smoke
def test_parameterized_smoke():
    """Symbolic-first and instantiate-only parameterized checks agree on
    a seeded ansatz pair, and the symbolic path stays fast: the full
    baseline comparison lives in ``benchmarks/bench_parameterized.py``
    (``BENCH_parameterized.json``); here we only guard its invariants."""
    from repro.fuzz.generator import generate_instance

    # Seed 2 draws an equivalent (split-rotation) pair; the symbolic ZX
    # path proves it for every valuation.
    _, pair = generate_instance(2, family="parameterized")
    assert pair.label == "equivalent"

    elapsed = {}
    verdicts = {}
    for label, symbolic in (("symbolic", True), ("instantiate", False)):
        config = Configuration(
            strategy="parameterized", parameterized_symbolic=symbolic,
            static_analysis=False, timeout=30.0, seed=0,
        )
        start = time.perf_counter()
        result = EquivalenceCheckingManager(
            pair.circuit1, pair.circuit2, config
        ).run()
        elapsed[label] = time.perf_counter() - start
        verdicts[label] = result.equivalence

    assert verdicts["symbolic"] in POSITIVE
    assert verdicts["instantiate"] is Equivalence.PROBABLY_EQUIVALENT
    # The symbolic proof skips all num_instantiations concrete checks;
    # parity with a small allowance still catches a ladder regression.
    assert elapsed["symbolic"] <= elapsed["instantiate"] * 1.1 + 0.05


@pytest.mark.bench_smoke
def test_parameterized_smoke_detects_error():
    """A planted coefficient nudge must yield a separating witness."""
    from repro.circuit import circuit_unitary, unitaries_equivalent
    from repro.circuit.symbolic import instantiate_circuit
    from repro.fuzz.generator import generate_instance

    _, pair = generate_instance(0, family="parameterized")
    assert pair.label == "not_equivalent"
    config = Configuration(strategy="parameterized", timeout=30.0, seed=0)
    result = EquivalenceCheckingManager(
        pair.circuit1, pair.circuit2, config
    ).run()
    assert result.equivalence is Equivalence.NOT_EQUIVALENT
    witness = result.statistics["parameterized"]["witness_valuation"]
    u1 = circuit_unitary(instantiate_circuit(pair.circuit1, witness))
    u2 = circuit_unitary(instantiate_circuit(pair.circuit2, witness))
    assert not unitaries_equivalent(u1, u2)
