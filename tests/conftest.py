"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.circuit import QuantumCircuit


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    gate_set: str = "mixed",
) -> QuantumCircuit:
    """Deterministic random circuit factory.

    ``gate_set`` picks the flavour:
      * ``"clifford_t"`` — H/S/T/X/Z/CX/CZ (exact dyadic phases),
      * ``"rotations"`` — H/RX/RZ/CX with arbitrary float angles,
      * ``"mixed"`` — everything incl. Toffolis, SWAPs, controlled phases.
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{gate_set}_{seed}")
    if gate_set == "clifford_t":
        choices = ["h", "s", "t", "x", "z", "sdg", "tdg", "cx", "cz"]
    elif gate_set == "rotations":
        choices = ["h", "rx", "rz", "cx"]
    else:
        choices = [
            "h", "s", "t", "x", "y", "z", "rx", "ry", "rz", "p",
            "cx", "cz", "swap", "ccx", "cp", "u3",
        ]
    for _ in range(num_gates):
        name = rng.choice(choices)
        if name in ("cx", "cz", "swap") and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            getattr(circuit, name)(a, b)
        elif name == "ccx" and num_qubits >= 3:
            a, b, c = rng.sample(range(num_qubits), 3)
            circuit.ccx(a, b, c)
        elif name == "cp" and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.cp(rng.uniform(0, 2 * math.pi), a, b)
        elif name in ("rx", "ry", "rz", "p"):
            q = rng.randrange(num_qubits)
            getattr(circuit, name)(rng.uniform(0, 2 * math.pi), q)
        elif name == "u3":
            q = rng.randrange(num_qubits)
            circuit.u3(
                rng.uniform(0, 2 * math.pi),
                rng.uniform(0, 2 * math.pi),
                rng.uniform(0, 2 * math.pi),
                q,
            )
        elif name in ("h", "s", "t", "x", "y", "z", "sdg", "tdg"):
            circuit.add(name, [rng.randrange(num_qubits)])
    return circuit


@pytest.fixture
def rng():
    return random.Random(1234)


def assert_allclose(actual, expected, atol: float = 1e-9) -> None:
    np.testing.assert_allclose(actual, expected, atol=atol, rtol=0)
