"""Manager integration of the static pre-pass and the analysis strategy."""

import dataclasses

from repro.analysis import analyze_pair
from repro.circuit.circuit import QuantumCircuit
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence


def _neq_pair():
    """A pair the pre-pass decides statically (idle-wire mismatch)."""
    a = QuantumCircuit(3).h(0).cx(0, 1)
    b = QuantumCircuit(3).h(0).cx(0, 1).x(2)
    return a, b


def _clifford_pair():
    a = QuantumCircuit(2).h(0).cx(0, 1)
    b = QuantumCircuit(2).h(0).cx(0, 1)
    return a, b


class TestShortCircuit:
    def test_sound_neq_short_circuits_combined(self):
        manager = EquivalenceCheckingManager(*_neq_pair())
        result = manager.run()
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert result.strategy == "combined"
        analysis = result.statistics["analysis"]
        assert analysis["verdict"] == "not_equivalent"
        assert analysis["witness"]["kind"] == "idle_wire_mismatch"
        # No checker ran: the short-circuit must not have touched the
        # simulation or DD paths.
        assert "simulations_run" not in result.statistics
        assert "max_dd_size" not in result.statistics

    def test_short_circuit_applies_to_single_strategies(self):
        for strategy in ("alternating", "construction", "zx", "simulation"):
            manager = EquivalenceCheckingManager(
                *_neq_pair(), Configuration(strategy=strategy)
            )
            result = manager.run()
            assert result.equivalence is Equivalence.NOT_EQUIVALENT, strategy
            assert "analysis" in result.statistics, strategy

    def test_positive_proof_does_not_short_circuit(self):
        # The spec short-circuits *only* sound NEQ witnesses; an
        # equivalent pair still runs the configured checker.
        a = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        b = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        result = EquivalenceCheckingManager(a, b).run()
        assert result.considered_equivalent
        # The checker genuinely ran.
        assert "combined_schedule" in result.statistics

    def test_state_strategy_opts_out(self):
        # rz(θ) versus the empty circuit: unitarily non-equivalent, but
        # both prepare |0> up to global phase.  The unitary-level
        # pre-pass must not override the state checker's semantics.
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).rz(0.4, 0)
        result = EquivalenceCheckingManager(
            a, b, Configuration(strategy="state")
        ).run()
        assert result.considered_equivalent
        assert "analysis" not in result.statistics


class TestRunSingleSeam:
    def test_run_single_exercises_the_prepass(self):
        # Regression: run_single (the fuzz oracle's entry point) must go
        # through the same dispatch seam as run(), including the static
        # pre-pass — otherwise the fuzzer would never exercise the code
        # path users hit.
        manager = EquivalenceCheckingManager(
            *_neq_pair(), Configuration(strategy="zx")
        )
        result = manager.run_single("combined")
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert result.statistics["analysis"]["verdict"] == "not_equivalent"
        # The override is transient.
        assert manager.configuration.strategy == "zx"

    def test_run_single_respects_static_analysis_flag(self):
        manager = EquivalenceCheckingManager(
            *_neq_pair(), Configuration(static_analysis=False)
        )
        result = manager.run_single("combined")
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert "analysis" not in result.statistics
        assert result.statistics["simulations_run"] >= 1


class TestAdvisor:
    def test_clifford_pair_prepends_stabilizer(self):
        result = EquivalenceCheckingManager(*_clifford_pair()).run()
        assert result.statistics["combined_schedule"] == [
            "stabilizer",
            "simulation",
            "alternating",
        ]
        # The stabilizer stage proved it; no simulations were needed.
        assert result.equivalence in (
            Equivalence.EQUIVALENT,
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        )
        assert "simulations_run" not in result.statistics

    def test_non_clifford_pair_keeps_default_schedule(self):
        a = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        b = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        result = EquivalenceCheckingManager(a, b).run()
        assert result.statistics["combined_schedule"] == [
            "simulation",
            "alternating",
        ]
        assert result.statistics["simulations_run"] >= 1

    def test_advice_matches_analyze_pair(self):
        a, b = _clifford_pair()
        report = analyze_pair(a, b)
        assert report.advice.schedule == (
            "stabilizer", "simulation", "alternating",
        )
        assert report.advice.preferred_checker == "stabilizer"


class TestAnalysisStrategy:
    def test_neq_verdict(self):
        result = EquivalenceCheckingManager(
            *_neq_pair(), Configuration(strategy="analysis")
        ).run()
        assert result.equivalence is Equivalence.NOT_EQUIVALENT
        assert result.strategy == "analysis"

    def test_undecided_is_no_information(self):
        result = EquivalenceCheckingManager(
            *_clifford_pair(), Configuration(strategy="analysis")
        ).run()
        assert result.equivalence is Equivalence.NO_INFORMATION

    def test_positive_proof_on_factorizable_pair(self):
        a = QuantumCircuit(4).h(0).cx(0, 1).t(2).cx(2, 3)
        b = QuantumCircuit(4).h(0).cx(0, 1).t(2).cx(2, 3)
        result = EquivalenceCheckingManager(
            a, b, Configuration(strategy="analysis")
        ).run()
        assert result.equivalence is Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE

    def test_perf_counters_use_analysis_namespace(self):
        result = EquivalenceCheckingManager(
            *_neq_pair(), Configuration(strategy="analysis")
        ).run()
        perf = result.statistics["perf"]
        assert all(
            name.startswith("analysis.")
            for name in perf["phase_seconds"]
        )
        assert perf["counters"]["analysis.runs"] == 1

    def test_configuration_accepts_analysis_strategy(self):
        config = Configuration(strategy="analysis")
        config.validate()
        config = dataclasses.replace(config, strategy="nonsense")
        try:
            config.validate()
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("invalid strategy accepted")


class TestTimeoutBehaviour:
    def test_prepass_respects_deadline(self):
        import pytest

        from repro.analysis import analyze_pair as ap
        from repro.ec.results import EquivalenceCheckingTimeout

        a, b = _neq_pair()
        with pytest.raises(EquivalenceCheckingTimeout):
            ap(a, b, deadline=0.0)  # already expired
