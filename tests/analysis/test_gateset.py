"""Unit tests for gate-set / fragment profiling (pass 3)."""

import math

from repro.analysis.gateset import (
    FRAGMENT_CLIFFORD,
    FRAGMENT_CLIFFORD_T,
    FRAGMENT_EMPTY,
    FRAGMENT_MIXED,
    FRAGMENT_ROTATION_HEAVY,
    is_phase_poly_operation,
    profile_gate_set,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


class TestFragmentClassification:
    def test_empty_circuit(self):
        assert profile_gate_set(QuantumCircuit(3)).fragment == FRAGMENT_EMPTY

    def test_clifford_only(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).s(1).cz(1, 2).swap(0, 2)
        profile = profile_gate_set(circuit)
        assert profile.fragment == FRAGMENT_CLIFFORD
        assert profile.is_clifford
        assert profile.is_clifford_t
        assert profile.two_qubit_gates == 3

    def test_clifford_t(self):
        circuit = QuantumCircuit(2).h(0).t(0).cx(0, 1).tdg(1)
        profile = profile_gate_set(circuit)
        assert profile.fragment == FRAGMENT_CLIFFORD_T
        assert not profile.is_clifford
        assert profile.is_clifford_t
        assert profile.t_like_gates == 2

    def test_rz_at_odd_quarter_is_t_like(self):
        circuit = QuantumCircuit(1).rz(3 * math.pi / 4, 0)
        profile = profile_gate_set(circuit)
        assert profile.t_like_gates == 1
        assert profile.fragment == FRAGMENT_CLIFFORD_T

    def test_rz_at_half_pi_is_clifford_not_t_like(self):
        profile = profile_gate_set(QuantumCircuit(1).rz(math.pi / 2, 0))
        assert profile.clifford_gates == 1
        assert profile.t_like_gates == 0

    def test_rotation_heavy(self):
        circuit = QuantumCircuit(2)
        for i in range(4):
            circuit.rz(0.1 + i, 0)
        circuit.cx(0, 1)
        profile = profile_gate_set(circuit)
        assert profile.fragment == FRAGMENT_ROTATION_HEAVY
        assert profile.rotation_gates == 4

    def test_mixed_with_toffoli(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        for _ in range(10):
            circuit.h(0)
        profile = profile_gate_set(circuit)
        assert profile.fragment == FRAGMENT_MIXED
        assert profile.other_non_clifford == 1
        assert profile.multi_controlled == 1

    def test_gate_counts_use_controlled_mnemonics(self):
        circuit = QuantumCircuit(3).cx(0, 1).ccx(0, 1, 2).x(0)
        counts = dict(profile_gate_set(circuit).gate_counts)
        assert counts == {"cx": 1, "ccx": 1, "x": 1}


class TestPhasePolyMembership:
    def test_fragment_members(self):
        assert is_phase_poly_operation(Operation("x", (0,)))
        assert is_phase_poly_operation(Operation("x", (1,), (0,)))
        assert is_phase_poly_operation(Operation("swap", (0, 1)))
        assert is_phase_poly_operation(Operation("rz", (0,), params=(0.3,)))
        assert is_phase_poly_operation(Operation("t", (0,)))
        assert is_phase_poly_operation(Operation("z", (0,)))

    def test_non_members(self):
        assert not is_phase_poly_operation(Operation("h", (0,)))
        assert not is_phase_poly_operation(Operation("x", (2,), (0, 1)))
        assert not is_phase_poly_operation(Operation("rx", (0,), params=(0.3,)))
        assert not is_phase_poly_operation(Operation("z", (1,), (0,)))

    def test_profile_flag(self):
        inside = QuantumCircuit(2).x(0).cx(0, 1).rz(0.2, 1).t(0)
        outside = QuantumCircuit(2).h(0).cx(0, 1)
        assert profile_gate_set(inside).phase_poly_compatible
        assert not profile_gate_set(outside).phase_poly_compatible
