"""Analyzer soundness against dense ground truth, across fuzz families.

The acceptance property: on every generated pair (all five families,
widths ≤ 8; symbolic pairs sampled at the planted witness plus seeded
valuations), a static verdict must never contradict the dense-unitary
ground truth — no NEQ witness on an equivalent pair, no equivalence
proof on a non-equivalent pair — and equivalent-*labeled* mutator pairs
must never be flagged even when the dense truth is skipped.
"""

import numpy as np
import pytest

from repro.analysis import analyze_pair
from repro.circuit.symbolic import (
    circuit_parameters,
    instantiate_circuit,
    is_symbolic_circuit,
)
from repro.circuit.unitary import circuit_unitary, hilbert_schmidt_fidelity
from repro.ec.configuration import Configuration
from repro.ec.param_checker import draw_valuations
from repro.ec.permutations import to_logical_form
from repro.fuzz.generator import FAMILIES, generate_instance
from repro.fuzz.mutators import LABEL_EQUIVALENT

_PAIRS_PER_FAMILY = 30
_DENSE_LIMIT = 8


def _unitaries_match(logical1, logical2) -> bool:
    u1 = circuit_unitary(logical1)
    u2 = circuit_unitary(logical2)
    return abs(hilbert_schmidt_fidelity(u1, u2) - 1.0) < 1e-8


def _dense_verdict(pair) -> str:
    n = pair.num_qubits
    config = Configuration()
    logical1, _ = to_logical_form(pair.circuit1, n)
    logical2, _ = to_logical_form(pair.circuit2, n)
    if is_symbolic_circuit(logical1) or is_symbolic_circuit(logical2):
        # Symbolic pair: ground truth is sampled — the planted witness
        # valuation first (the one place a breaking mutator must show),
        # then seeded draws.  NEQ at any valuation decides.
        variables = sorted(
            set(circuit_parameters(logical1))
            | set(circuit_parameters(logical2))
        )
        valuations = []
        planted = (pair.witness or {}).get("valuation")
        if isinstance(planted, dict):
            valuations.append(
                {v: float(planted.get(v, 0.0)) for v in variables}
            )
        valuations.extend(draw_valuations(tuple(variables), 8, 1234))
        for valuation in valuations:
            inst1 = instantiate_circuit(logical1, valuation)
            inst2 = instantiate_circuit(logical2, valuation)
            if not _unitaries_match(inst1, inst2):
                return "not_equivalent"
        return "equivalent"
    if _unitaries_match(logical1, logical2):
        return "equivalent"
    return "not_equivalent"


def _iter_pairs(family):
    produced = 0
    seed = 0
    while produced < _PAIRS_PER_FAMILY:
        seed += 1
        try:
            _, pair = generate_instance(seed, family)
        except Exception:  # non-applicable recipe draws
            continue
        if pair.num_qubits > _DENSE_LIMIT:
            continue
        produced += 1
        yield seed, pair


@pytest.mark.parametrize("family", FAMILIES)
def test_static_verdicts_never_contradict_dense_truth(family):
    checked = 0
    decided = 0
    for seed, pair in _iter_pairs(family):
        report = analyze_pair(pair.circuit1, pair.circuit2)
        truth = _dense_verdict(pair)
        checked += 1
        if report.verdict == "not_equivalent":
            decided += 1
            assert truth == "not_equivalent", (
                f"UNSOUND static NEQ: family={family} seed={seed} "
                f"witness={report.witness}"
            )
        elif report.verdict == "equivalent_up_to_global_phase":
            decided += 1
            assert truth == "equivalent", (
                f"UNSOUND static EQ proof: family={family} seed={seed} "
                f"witness={report.witness}"
            )
    assert checked == _PAIRS_PER_FAMILY


@pytest.mark.parametrize("family", FAMILIES)
def test_equivalent_labeled_pairs_are_never_flagged(family):
    for seed, pair in _iter_pairs(family):
        if pair.label != LABEL_EQUIVALENT:
            continue
        report = analyze_pair(pair.circuit1, pair.circuit2)
        assert report.verdict != "not_equivalent", (
            f"static NEQ on an equivalent-labeled pair: family={family} "
            f"seed={seed} recipe={pair.recipe} witness={report.witness}"
        )


def test_analyzer_is_deterministic():
    _, pair = generate_instance(7, "clifford_t")
    first = analyze_pair(pair.circuit1, pair.circuit2)
    second = analyze_pair(pair.circuit1, pair.circuit2)
    assert first.verdict == second.verdict
    assert first.witness == second.witness
    assert first.advice == second.advice
