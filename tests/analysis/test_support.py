"""Unit tests for qubit-support / idle-wire analysis (pass 1)."""

import numpy as np

from repro.analysis import analyze_pair
from repro.analysis.support import (
    local_unitaries_proportional,
    support_check,
    wire_profiles,
)
from repro.circuit.circuit import QuantumCircuit, ghz_example
from repro.compile import compile_circuit, line_architecture
from repro.ec.permutations import to_logical_form


class TestWireProfiles:
    def test_idle_wire(self):
        profiles = wire_profiles(QuantumCircuit(2).h(0), 2)
        assert profiles[1].idle
        assert np.allclose(profiles[1].local_unitary, np.eye(2))

    def test_single_qubit_product_is_tracked(self):
        circuit = QuantumCircuit(1).h(0).s(0)
        profile = wire_profiles(circuit)[0]
        s_h = np.array([[1, 0], [0, 1j]]) @ (
            np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        )
        assert np.allclose(profile.local_unitary, s_h)

    def test_multi_qubit_gate_poisons_the_wire(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(0)
        profiles = wire_profiles(circuit)
        assert profiles[0].local_unitary is None
        assert profiles[1].local_unitary is None
        assert profiles[0].multi_qubit_gates == 1

    def test_padding_to_wider_register(self):
        profiles = wire_profiles(QuantumCircuit(1).x(0), 3)
        assert len(profiles) == 3
        assert profiles[2].idle


class TestSoundness:
    def test_x_x_identity_is_not_flagged(self):
        # The classic trap: non-empty support but identity action.
        circuit1 = QuantumCircuit(2).x(0).x(0)
        circuit2 = QuantumCircuit(2)
        witness, _ = support_check(circuit1, circuit2, 2)
        assert witness is None

    def test_global_phase_difference_is_not_flagged(self):
        # rz(θ) and p(θ) differ by a global phase only.
        circuit1 = QuantumCircuit(1).rz(0.7, 0)
        circuit2 = QuantumCircuit(1).p(0.7, 0)
        witness, _ = support_check(circuit1, circuit2, 1)
        assert witness is None

    def test_idle_wire_mismatch_is_flagged(self):
        circuit1 = QuantumCircuit(3).h(0).cx(0, 1)
        circuit2 = QuantumCircuit(3).h(0).cx(0, 1).x(2)
        witness, summary = support_check(circuit1, circuit2, 3)
        assert witness is not None
        assert witness["kind"] == "idle_wire_mismatch"
        assert witness["wire"] == 2
        assert summary["support"] == [[0, 1], [0, 1, 2]]

    def test_local_wire_mismatch_is_flagged(self):
        circuit1 = QuantumCircuit(2).h(0).cx(0, 1)
        circuit2 = QuantumCircuit(2).h(0).cx(0, 1)
        # Same entangled pair, but circuit2 carries an extra product wire.
        circuit1 = QuantumCircuit(3).h(0).cx(0, 1).s(2)
        circuit2 = QuantumCircuit(3).h(0).cx(0, 1).t(2)
        witness, _ = support_check(circuit1, circuit2, 3)
        assert witness is not None
        assert witness["kind"] == "local_wire_mismatch"
        assert witness["wire"] == 2

    def test_entangled_wires_are_never_ruled_on(self):
        circuit1 = QuantumCircuit(2).h(0).cx(0, 1).z(1)
        circuit2 = QuantumCircuit(2).h(0).cx(0, 1)
        witness, summary = support_check(circuit1, circuit2, 2)
        assert witness is None
        assert summary["local_wires_compared"] == 0


class TestProportionality:
    def test_proportional_up_to_phase(self):
        u = np.eye(2, dtype=np.complex128)
        v = np.exp(1j * 0.4) * u
        proportional, defect = local_unitaries_proportional(u, v)
        assert proportional
        assert defect < 1e-12

    def test_distinct_unitaries(self):
        u = np.eye(2, dtype=np.complex128)
        v = np.array([[0, 1], [1, 0]], dtype=np.complex128)
        proportional, defect = local_unitaries_proportional(u, v)
        assert not proportional
        assert defect == 2.0


class TestPermutationAwareness:
    def test_routed_pair_is_compared_on_logical_wires(self):
        # Compiling onto a line inserts SWAPs and a layout; the support
        # pass must fold both in before comparing wires.  The pair is
        # genuinely equivalent, so no witness may appear.
        original = ghz_example()
        compiled = compile_circuit(original, line_architecture(4))
        report = analyze_pair(original, compiled)
        assert report.verdict != "not_equivalent"

    def test_routed_pair_with_planted_idle_error(self):
        original = ghz_example()  # 3 qubits
        compiled = compile_circuit(original, line_architecture(4))
        # Plant an error on a wire that is idle in logical terms.
        broken = compiled.copy().x(3)
        broken.initial_layout = dict(compiled.initial_layout)
        broken.output_permutation = dict(compiled.output_permutation)
        report = analyze_pair(original, broken)
        assert report.verdict == "not_equivalent"
        assert report.witness["pass"] in ("support", "interaction")

    def test_to_logical_form_consistency(self):
        # Sanity: the pass sees exactly the logical rewriting the DD
        # checkers use, so verdicts transfer.
        original = ghz_example()
        compiled = compile_circuit(original, line_architecture(5))
        logical, _ = to_logical_form(compiled, 5)
        witness, _ = support_check(
            to_logical_form(original, 5)[0], logical, 5
        )
        assert witness is None
