"""Tier-1 smoke guard for the static-analysis benchmark invariants.

Marked ``bench_smoke`` so it can be selected alone::

    PYTHONPATH=src python -m pytest -m bench_smoke -q

The full measurement lives in ``benchmarks/bench_analysis.py`` (writes
``BENCH_analysis.json``).  Here we only guard what the benchmark relies
on: a statically decidable pair short-circuits without touching any
checker backend, and the pre-pass verdict agrees with the checker's.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.algorithms import ghz_state
from repro.circuit.circuit import QuantumCircuit
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence

_BACKEND_KEYS = (
    "max_dd_size",
    "simulations_run",
    "zx_rounds",
    "stabilizer_rounds",
)


def _idle_wire_pair():
    ghz = ghz_state(7)
    a = QuantumCircuit(8, operations=ghz.operations)
    b = QuantumCircuit(8, operations=ghz.operations)
    b.x(7)
    return a, b


@pytest.mark.bench_smoke
def test_short_circuit_skips_backends_and_stays_fast():
    a, b = _idle_wire_pair()
    start = time.perf_counter()
    result = EquivalenceCheckingManager(a, b).run()
    elapsed = time.perf_counter() - start

    assert result.equivalence is Equivalence.NOT_EQUIVALENT
    assert result.statistics["analysis"]["verdict"] == "not_equivalent"
    for key in _BACKEND_KEYS:
        assert key not in result.statistics, key
    # The pre-pass alone takes ~1 ms; a full second means something broke.
    assert elapsed < 1.0


@pytest.mark.bench_smoke
def test_prepass_agrees_with_the_checker():
    a, b = _idle_wire_pair()
    with_prepass = EquivalenceCheckingManager(
        a, b, Configuration(seed=0, static_analysis=True)
    ).run()
    without = EquivalenceCheckingManager(
        a, b, Configuration(seed=0, static_analysis=False)
    ).run()
    assert with_prepass.equivalence is Equivalence.NOT_EQUIVALENT
    assert without.equivalence is Equivalence.NOT_EQUIVALENT
    assert "analysis" not in without.statistics
