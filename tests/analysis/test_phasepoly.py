"""Unit tests for phase-polynomial canonicalization and comparison (pass 4)."""

import math

from repro.analysis.phasepoly import (
    PhasePolynomial,
    compare_phase_polynomials,
    extract_phase_polynomial,
    phase_polynomial_check,
)
from repro.circuit.circuit import QuantumCircuit

_PI = math.pi


class TestExtraction:
    def test_outside_fragment_returns_none(self):
        assert extract_phase_polynomial(QuantumCircuit(1).h(0)) is None

    def test_cnot_updates_parity_masks(self):
        poly = extract_phase_polynomial(QuantumCircuit(2).cx(0, 1))
        assert poly.wires == ((0b01, 0), (0b11, 0))

    def test_x_flips_the_constant(self):
        poly = extract_phase_polynomial(QuantumCircuit(2).x(0).cx(0, 1))
        assert poly.wires == ((0b01, 1), (0b11, 1))

    def test_swap_exchanges_wires(self):
        poly = extract_phase_polynomial(QuantumCircuit(2).swap(0, 1))
        assert poly.wires == ((0b10, 0), (0b01, 0))

    def test_phase_attaches_to_current_parity(self):
        circuit = QuantumCircuit(2).cx(0, 1).rz(0.5, 1)
        poly = extract_phase_polynomial(circuit)
        assert poly.phase_table() == {0b11: 0.5}

    def test_phase_on_negated_parity_negates_the_term(self):
        # x; rz(θ); x applies θ·[y ⊕ 1] = global θ minus θ·[y].
        circuit = QuantumCircuit(1).x(0).rz(0.5, 0).x(0)
        poly = extract_phase_polynomial(circuit)
        assert poly.phase_table() == {0b1: -0.5}

    def test_fixed_angle_gates(self):
        circuit = QuantumCircuit(1).t(0).tdg(0).s(0)
        poly = extract_phase_polynomial(circuit)
        assert math.isclose(poly.phase_table()[1], _PI / 2)

    def test_full_rotation_cancels_to_no_term(self):
        circuit = QuantumCircuit(1).s(0).s(0).s(0).s(0)
        poly = extract_phase_polynomial(circuit)
        assert poly.phases == ()


class TestComparison:
    def _poly(self, circuit):
        poly = extract_phase_polynomial(circuit)
        assert poly is not None
        return poly

    def test_identical_circuits_prove_equivalence(self):
        a = self._poly(QuantumCircuit(2).cx(0, 1).t(1).cx(0, 1))
        b = self._poly(QuantumCircuit(2).cx(0, 1).t(1).cx(0, 1))
        verdict, details = compare_phase_polynomials(a, b)
        assert verdict == "equivalent_up_to_global_phase"
        assert details["kind"] == "identical_phase_polynomial"

    def test_affine_mismatch_is_a_witness(self):
        a = self._poly(QuantumCircuit(2).cx(0, 1))
        b = self._poly(QuantumCircuit(2))
        verdict, details = compare_phase_polynomials(a, b)
        assert verdict == "not_equivalent"
        assert details["kind"] == "affine_map_mismatch"
        # The witness input must actually distinguish the two maps.
        assert details["wire"] == 1

    def test_rz_angle_mismatch(self):
        verdict, details = phase_polynomial_check(
            QuantumCircuit(1).rz(0.3, 0), QuantumCircuit(1).rz(0.8, 0)
        )
        assert verdict == "not_equivalent"
        assert details["kind"] == "relative_phase_mismatch"

    def test_pi_pi_pi_on_dependent_parities_cancels(self):
        # The soundness trap from the design review: per-term deltas of
        # π on y0, π on y1 and π on y0⊕y1 sum to 0 (mod 2π) on *every*
        # input, so the circuits are equivalent up to global phase and a
        # term-wise comparison would be WRONG to flag them.
        a = QuantumCircuit(2).z(0).z(1)
        b = QuantumCircuit(2).cx(0, 1).z(1).cx(0, 1)
        verdict, details = phase_polynomial_check(a, b)
        assert verdict == "equivalent_up_to_global_phase"
        assert details["kind"] == "phase_deltas_cancel"

    def test_dependent_parities_with_true_mismatch(self):
        # Same parity structure but angles that do NOT cancel.
        a = QuantumCircuit(2).rz(0.3, 0).rz(0.3, 1)
        b = QuantumCircuit(2).cx(0, 1).rz(-0.3, 1).cx(0, 1)
        verdict, details = phase_polynomial_check(a, b)
        assert verdict == "not_equivalent"
        assert details["kind"] == "relative_phase_mismatch"
        assert details["input"] > 0

    def test_independent_masks_mismatch(self):
        a = QuantumCircuit(3).t(0).t(1).t(2)
        b = QuantumCircuit(3).t(0).t(1)
        verdict, details = phase_polynomial_check(a, b)
        assert verdict == "not_equivalent"

    def test_width_mismatch_gives_no_verdict(self):
        a = PhasePolynomial(1, ((1, 0),), ())
        b = PhasePolynomial(2, ((1, 0), (2, 0)), ())
        verdict, _ = compare_phase_polynomials(a, b)
        assert verdict is None

    def test_enumeration_budget_degrades_to_no_verdict(self):
        # 40 independent small deltas below the NEQ tolerance would need
        # 2^40 assignments: the comparator must give up, not guess.
        n = 40
        masks = [1 << i for i in range(n)]
        a = PhasePolynomial(
            n,
            tuple((m, 0) for m in masks),
            tuple((m, 1e-5) for m in masks),
        )
        b = PhasePolynomial(n, tuple((m, 0) for m in masks), ())
        verdict, details = compare_phase_polynomials(a, b)
        assert verdict is None
        assert details["kind"] == "enumeration_budget_exceeded"
