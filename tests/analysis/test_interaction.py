"""Unit tests for interaction fingerprints and fragment isolation (pass 2)."""

from repro.analysis.interaction import (
    fragment_isolation_check,
    interaction_fingerprint,
    interaction_multigraph,
    union_components,
)
from repro.circuit.circuit import QuantumCircuit


class TestMultigraph:
    def test_counts_multi_qubit_ops_only(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 1).cz(1, 2)
        graph = dict(interaction_multigraph(circuit))
        assert graph == {(0, 1): 2, (1, 2): 1}

    def test_fingerprint_ignores_gate_names_but_not_structure(self):
        a = QuantumCircuit(2).cx(0, 1)
        b = QuantumCircuit(2).cz(0, 1)
        c = QuantumCircuit(3).cx(0, 2)
        assert interaction_fingerprint(a) == interaction_fingerprint(b)
        assert interaction_fingerprint(a) != interaction_fingerprint(c)


class TestUnionComponents:
    def test_disjoint_blocks(self):
        a = QuantumCircuit(4).cx(0, 1).cx(2, 3)
        b = QuantumCircuit(4).cz(0, 1).h(2).h(3)
        assert union_components((a, b), 4) == [(0, 1), (2, 3)]

    def test_union_merges_either_side(self):
        a = QuantumCircuit(3).cx(0, 1)
        b = QuantumCircuit(3).cx(1, 2)
        assert union_components((a, b), 3) == [(0, 1, 2)]

    def test_inactive_wires_are_excluded(self):
        a = QuantumCircuit(4).cx(0, 1)
        b = QuantumCircuit(4).cx(0, 1)
        assert union_components((a, b), 4) == [(0, 1)]


class TestFragmentIsolation:
    def test_single_component_gives_no_verdict(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1).z(1)
        witness, proof, _ = fragment_isolation_check(a, b, 2)
        assert witness is None
        assert proof is None

    def test_mismatched_fragment_is_a_witness(self):
        a = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        b = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3).z(3)
        witness, proof, summary = fragment_isolation_check(a, b, 4)
        assert witness is not None
        assert witness["kind"] == "fragment_mismatch"
        assert witness["fragment"] == [2, 3]
        assert proof is None
        assert summary["fragments_compared"] == 2

    def test_all_small_matching_fragments_prove_equivalence(self):
        a = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        b = QuantumCircuit(4).cx(0, 1).h(0).cx(0, 1).cx(0, 1).h(2).cx(2, 3)
        # b's first block is a rewritten-but-equal unitary?  Keep it
        # simple: identical blocks on both components.
        b = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        witness, proof, _ = fragment_isolation_check(a, b, 4)
        assert witness is None
        assert proof == "equivalent_up_to_global_phase"

    def test_large_fragment_blocks_the_proof_but_not_witnesses(self):
        # Component {0..4} exceeds the dense cap; component {5,6} is
        # small and broken — the witness must still be found.
        a = QuantumCircuit(7)
        b = QuantumCircuit(7)
        for q in range(4):
            a.cx(q, q + 1)
            b.cx(q, q + 1)
        a.h(5).cx(5, 6)
        b.h(5).cx(5, 6).x(6)
        witness, proof, _ = fragment_isolation_check(a, b, 7)
        assert witness is not None
        assert witness["fragment"] == [5, 6]
        assert proof is None

    def test_proportional_fragments_up_to_phase(self):
        a = QuantumCircuit(4).h(0).cx(0, 1).rz(0.5, 2).cx(2, 3)
        b = QuantumCircuit(4).h(0).cx(0, 1).p(0.5, 2).cx(2, 3)
        witness, proof, _ = fragment_isolation_check(a, b, 4)
        assert witness is None
        assert proof == "equivalent_up_to_global_phase"
