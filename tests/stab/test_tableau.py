"""Tests for the Clifford tableau substrate (`repro.stab`)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.stab import CliffordTableau, NonCliffordGateError
from tests.conftest import random_circuit


def clifford_circuit(num_qubits, num_gates, seed):
    """Random Clifford circuit (strip T gates from the clifford_t set)."""
    raw = random_circuit(num_qubits, num_gates, seed=seed, gate_set="clifford_t")
    circuit = QuantumCircuit(num_qubits)
    for op in raw:
        if op.name not in ("t", "tdg"):
            circuit.append(op)
    return circuit


class TestPrimitives:
    def test_identity_tableau(self):
        assert CliffordTableau(3).is_identity()

    def test_h_squared_is_identity(self):
        tableau = CliffordTableau(1)
        tableau.apply_h(0)
        tableau.apply_h(0)
        assert tableau.is_identity()

    def test_s_fourth_power_is_identity(self):
        tableau = CliffordTableau(1)
        for _ in range(4):
            tableau.apply_s(0)
        assert tableau.is_identity()

    def test_cx_squared_is_identity(self):
        tableau = CliffordTableau(2)
        tableau.apply_cx(0, 1)
        tableau.apply_cx(0, 1)
        assert tableau.is_identity()

    def test_hzh_equals_x(self):
        a = CliffordTableau(1)
        a.apply_h(0)
        a.apply_s(0)
        a.apply_s(0)
        a.apply_h(0)
        b = CliffordTableau.from_circuit(QuantumCircuit(1).x(0))
        assert a == b

    def test_x_conjugation_signs(self):
        """X Z X = -Z: the sign bit must flip on the Z row."""
        tableau = CliffordTableau.from_circuit(QuantumCircuit(1).x(0))
        # row 1 is the image of Z_0: must be -Z
        assert tableau.z[1, 0] and not tableau.x[1, 0]
        assert tableau.r[1]


class TestOperations:
    CLIFFORD_OPS = [
        ("h", (0,), (), ()),
        ("s", (0,), (), ()),
        ("sdg", (0,), (), ()),
        ("x", (0,), (), ()),
        ("y", (0,), (), ()),
        ("z", (0,), (), ()),
        ("sx", (0,), (), ()),
        ("sxdg", (0,), (), ()),
        ("rz", (0,), (), (math.pi / 2,)),
        ("rx", (0,), (), (-math.pi / 2,)),
        ("ry", (0,), (), (math.pi / 2,)),
        ("p", (0,), (), (math.pi,)),
        ("x", (1,), (0,), ()),
        ("z", (1,), (0,), ()),
        ("y", (1,), (0,), ()),
        ("swap", (0, 1), (), ()),
        ("iswap", (0, 1), (), ()),
        ("rzz", (0, 1), (), (math.pi / 2,)),
    ]

    @pytest.mark.parametrize("name,targets,controls,params", CLIFFORD_OPS)
    def test_matches_dense_conjugation(self, name, targets, controls, params):
        """Tableau action == matrix conjugation of every Pauli generator."""
        from repro.circuit.gate import Operation
        from repro.circuit.unitary import operation_unitary

        op = Operation(name, targets, controls, params)
        n = 2
        tableau = CliffordTableau(n)
        tableau.apply_operation(op)
        unitary = operation_unitary(op, n)
        paulis = {
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Z": np.array([[1, 0], [0, -1]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "I": np.eye(2, dtype=complex),
        }

        def pauli_matrix(x_bits, z_bits, sign):
            """CHP rows encode (1,1) as the exact Pauli Y (= i X Z)."""
            out = np.eye(1, dtype=complex)
            for q in reversed(range(n)):
                key = (
                    "Y" if x_bits[q] and z_bits[q]
                    else "X" if x_bits[q] else "Z" if z_bits[q] else "I"
                )
                out = np.kron(out, paulis[key])
            return (-1 if sign else 1) * out

        for index, generator in enumerate(["X0", "X1", "Z0", "Z1"]):
            base = np.eye(1, dtype=complex)
            for q in reversed(range(n)):
                if generator == f"X{q}":
                    base = np.kron(base, paulis["X"])
                elif generator == f"Z{q}":
                    base = np.kron(base, paulis["Z"])
                else:
                    base = np.kron(base, paulis["I"])
            conjugated = unitary @ base @ unitary.conj().T
            image = pauli_matrix(
                tableau.x[index], tableau.z[index], tableau.r[index]
            )
            np.testing.assert_allclose(conjugated, image, atol=1e-9)

    def test_t_gate_rejected(self):
        with pytest.raises(NonCliffordGateError):
            CliffordTableau.from_circuit(QuantumCircuit(1).t(0))

    def test_non_clifford_angle_rejected(self):
        with pytest.raises(NonCliffordGateError):
            CliffordTableau.from_circuit(QuantumCircuit(1).rz(0.3, 0))

    def test_toffoli_rejected(self):
        with pytest.raises(NonCliffordGateError):
            CliffordTableau.from_circuit(QuantumCircuit(3).ccx(0, 1, 2))


class TestCircuitEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_tableau_equality_matches_dense_equivalence(self, seed):
        """Cross-validation: tableau equality == unitary equivalence."""
        a = clifford_circuit(3, 15, seed)
        b = clifford_circuit(3, 15, seed + 1)
        tableau_equal = CliffordTableau.from_circuit(
            a
        ) == CliffordTableau.from_circuit(b)
        dense_equal = unitaries_equivalent(
            circuit_unitary(a), circuit_unitary(b)
        )
        assert tableau_equal == dense_equal

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_circuit_times_inverse_is_identity(self, seed):
        circuit = clifford_circuit(4, 25, seed)
        tableau = CliffordTableau.from_circuit(
            circuit.compose(circuit.inverse())
        )
        assert tableau.is_identity()


class TestStabilizerStates:
    def test_ghz_stabilizers(self):
        ghz = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2)
        generators = CliffordTableau.from_circuit(
            ghz
        ).canonical_stabilizer_generators()
        assert "+XXX" in generators
        assert all(g[0] == "+" for g in generators)

    def test_same_state_detects_equal_preparations(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(1).cx(1, 0)  # same Bell state
        ta, tb = (
            CliffordTableau.from_circuit(a),
            CliffordTableau.from_circuit(b),
        )
        assert ta != tb  # different unitaries...
        assert ta.same_state(tb)  # ...same output state

    def test_different_states_distinguished(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(1).x(0)
        assert not CliffordTableau.from_circuit(a).same_state(
            CliffordTableau.from_circuit(b)
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_state_matches_dense_statevector(self, seed):
        from repro.circuit import statevector

        a = clifford_circuit(3, 12, seed)
        b = clifford_circuit(3, 12, seed + 7)
        tableau_same = CliffordTableau.from_circuit(a).same_state(
            CliffordTableau.from_circuit(b)
        )
        overlap = abs(np.vdot(statevector(a), statevector(b)))
        assert tableau_same == (overlap > 1 - 1e-9)
