"""Fixture tests for the interprocedural ``deadline-prop`` rule."""

from repro.lint.rules import DeadlinePropagationRule

from tests.lint.conftest import lint_with


class TestPropagation:
    def test_unbounded_helper_reachable_from_entry_is_flagged(self, fake_tree):
        # The hole the old syntactic rule documented: the helper has no
        # ``deadline`` parameter, so "loops in deadline-scoped functions"
        # exempted it by construction — yet the checker entry point
        # cannot bound it.
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    _search(circ)
                    return 0


                def _search(circ):
                    while circ:
                        circ = circ.step()
                """
            }
        )
        findings = lint_with(root, DeadlinePropagationRule())
        assert [f.rule for f in findings] == ["deadline-prop"]
        assert findings[0].line == 7
        assert "thread the deadline through" in findings[0].message
        # The report names the call chain from the entry point.
        assert "run" in findings[0].message
        assert "_search" in findings[0].message

    def test_cross_module_helper_ignoring_its_deadline_is_flagged(
        self, fake_tree
    ):
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                from repro.ec.support import refine


                def run(circ, deadline):
                    refine(circ, deadline)
                    return 0
                """,
                "ec/support.py": """\
                def refine(circ, deadline):
                    while circ:
                        circ = circ.step()
                """,
            }
        )
        findings = lint_with(root, DeadlinePropagationRule())
        assert [f.rule for f in findings] == ["deadline-prop"]
        assert findings[0].path.name == "support.py"
        assert findings[0].line == 2
        assert "ignores the in-scope deadline" in findings[0].message

    def test_recursive_helpers_converge_and_flag_once(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    _a(circ)
                    return 0


                def _a(circ):
                    return _b(circ)


                def _b(circ):
                    while circ:
                        circ = _a(circ)
                """
            }
        )
        findings = lint_with(root, DeadlinePropagationRule())
        assert [f.rule for f in findings] == ["deadline-prop"]
        assert findings[0].line == 11


class TestBounds:
    def test_for_loops_do_not_participate(self, fake_tree):
        # A for over a materialized iterable terminates with its input;
        # only while-loops are fixpoint engines.
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    _walk(circ)
                    return 0


                def _walk(circ):
                    for op in circ:
                        use(op)
                """
            }
        )
        assert lint_with(root, DeadlinePropagationRule()) == []

    def test_deadline_consulting_loop_is_clean(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    _search(circ, deadline)
                    return 0


                def _search(circ, deadline):
                    while circ:
                        _check_deadline(deadline)
                        circ = circ.step()
                """
            }
        )
        assert lint_with(root, DeadlinePropagationRule()) == []

    def test_unreachable_helper_is_exempt(self, fake_tree):
        # Not called from any checker entry point: nobody's deadline is
        # at stake.
        root = fake_tree(
            {
                "ec/support.py": """\
                def orphan(circ):
                    while circ:
                        circ = circ.step()
                """
            }
        )
        assert lint_with(root, DeadlinePropagationRule()) == []

    def test_propagation_stops_outside_ec_and_zx(self, fake_tree):
        # Calls into the dd kernels are deliberately not followed.
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                from repro.dd.kernels import probe


                def run(circ, deadline):
                    probe(circ)
                    return 0
                """,
                "dd/kernels.py": """\
                def probe(circ):
                    while circ:
                        circ = circ.step()
                """,
            }
        )
        assert lint_with(root, DeadlinePropagationRule()) == []
