"""Fixture tests for the ``error-taxonomy`` rule."""

from repro.lint.rules import ErrorTaxonomyRule

from tests.lint.conftest import lint_with


class TestHandlers:
    def test_bare_except_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job):
                    try:
                        job()
                    except:
                        pass
                """
            }
        )
        findings = lint_with(root, ErrorTaxonomyRule())
        assert [f.rule for f in findings] == ["error-taxonomy"]
        assert findings[0].line == 4
        assert "bare except" in findings[0].message

    def test_swallowing_broad_handler_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                def run(job, log):
                    try:
                        job()
                    except Exception as exc:
                        log.warning("ignored %s", exc)
                """
            }
        )
        findings = lint_with(root, ErrorTaxonomyRule())
        assert [f.rule for f in findings] == ["error-taxonomy"]
        assert findings[0].line == 4
        assert "swallows" in findings[0].message

    def test_classifying_broad_handler_is_clean(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job):
                    try:
                        job()
                    except Exception as exc:
                        raise classify_exception(exc)
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_worker_exit_handler_is_clean(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                import os


                def child_main(job):
                    try:
                        job()
                    except BaseException:
                        os._exit(70)
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_narrow_handler_is_clean(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job):
                    try:
                        job()
                    except KeyError:
                        return None
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_handler_in_try_finally_is_reported_once(self, fake_tree):
        # The finally's synthetic CFG node borrows the Try statement for
        # location; handlers must still anchor exactly once.
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job, conn):
                    try:
                        job()
                    except:
                        pass
                    finally:
                        conn.close()
                """
            }
        )
        findings = lint_with(root, ErrorTaxonomyRule())
        assert [f.rule for f in findings] == ["error-taxonomy"]


class TestRaises:
    def test_ad_hoc_runtime_error_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job):
                    raise RuntimeError("boom")
                """
            }
        )
        findings = lint_with(root, ErrorTaxonomyRule())
        assert [f.rule for f in findings] == ["error-taxonomy"]
        assert findings[0].line == 2
        assert "RuntimeError" in findings[0].message

    def test_taxonomy_class_from_repro_errors_is_allowed(self, fake_tree):
        root = fake_tree(
            {
                "errors.py": """\
                class CheckError(Exception):
                    pass
                """,
                "service/demo.py": """\
                from repro.errors import CheckError


                def run(job):
                    raise CheckError("classified")
                """,
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_module_local_exception_class_is_allowed(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                class LocalFault(Exception):
                    pass


                def run(job):
                    raise LocalFault("scoped taxonomy")
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_stdlib_contract_error_is_allowed(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(width):
                    if width < 1:
                        raise ValueError("width must be positive")
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []

    def test_bare_reraise_is_allowed(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def run(job):
                    try:
                        job()
                    except KeyError:
                        raise
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []


class TestScope:
    def test_checker_packages_are_exempt(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo.py": """\
                def run(job):
                    raise RuntimeError("checkers have their own contract")
                """
            }
        )
        assert lint_with(root, ErrorTaxonomyRule()) == []
