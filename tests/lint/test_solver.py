"""Tests for the worklist fixpoint solver and the FOW control-dependence
construction in :mod:`repro.lint.solver`."""

import ast

import pytest

from repro.lint.cfg import EXC, build_cfg
from repro.lint.solver import control_dependence, postdominators, solve_forward


def _cfg(source: str):
    tree = ast.parse(source)
    return build_cfg(tree.body[0], "f")


def _line_node(cfg, line, kind="stmt"):
    matches = [n for n in cfg.nodes if n.kind == kind and n.line == line]
    assert len(matches) == 1, matches
    return matches[0]


def _set_join(a, b):
    return a | b


class TestSolveForward:
    def test_reaching_assignments(self):
        # Classic may-analysis: which names have been assigned on some
        # path reaching each point.
        cfg = _cfg(
            "def f(c):\n"
            "    x = 1\n"
            "    if c:\n"
            "        y = 2\n"
            "    z = 3\n"
        )

        def transfer(node, state):
            if isinstance(node.stmt, ast.Assign):
                names = {
                    t.id for t in node.stmt.targets if isinstance(t, ast.Name)
                }
                return state | frozenset(names)
            return state

        result = solve_forward(
            cfg,
            transfer,
            _set_join,
            initial=frozenset(),
            bottom=frozenset(),
        )
        final = _line_node(cfg, 5)
        # ``y`` is assigned only on the true branch, but this is a may
        # analysis: the join at line 5 sees it.
        assert result.at_entry(final) >= {"x", "y"}
        assert result.at_exit(final) >= {"x", "y", "z"}

    def test_bottom_equal_initial_still_propagates(self):
        # Regression: with ``initial == bottom`` a naive change-driven
        # worklist never sees a state change at any successor and the
        # fixpoint dies at the entry node.  The solver must still visit
        # every reachable node at least once.
        cfg = _cfg(
            "def f():\n"
            "    a = 1\n"
            "    b = 2\n"
            "    return b\n"
        )
        visited = set()

        def transfer(node, state):
            visited.add(node.index)
            return state

        result = solve_forward(
            cfg,
            transfer,
            _set_join,
            initial=frozenset(),
            bottom=frozenset(),
        )
        reachable = {cfg.entry.index}
        frontier = [cfg.entry]
        while frontier:
            node = frontier.pop()
            for succ, _ in node.succs:
                if succ.index not in reachable:
                    reachable.add(succ.index)
                    frontier.append(succ)
        assert reachable <= visited
        assert result.iterations >= len(reachable)

    def test_loop_converges_to_fixpoint(self):
        cfg = _cfg(
            "def f(items):\n"
            "    acc = 0\n"
            "    for x in items:\n"
            "        acc = acc + x\n"
            "    return acc\n"
        )

        def transfer(node, state):
            if isinstance(node.stmt, ast.Assign):
                return state | {node.line}
            return state

        result = solve_forward(
            cfg, transfer, _set_join, initial=frozenset(), bottom=frozenset()
        )
        head = _line_node(cfg, 3)
        # The back edge feeds the body assignment's effect into the
        # loop head's entry state.
        assert 4 in result.at_entry(head)
        assert result.iterations < 100

    def test_edge_transfer_selects_pre_state_on_exception_edges(self):
        # An acquisition's exception edge must carry the state from
        # *before* the acquisition: if ``open`` raises there is nothing
        # to leak.  The resource rule relies on this shape.
        cfg = _cfg(
            "def f(path):\n"
            "    fh = acquire(path)\n"
            "    return fh\n"
        )
        acq = _line_node(cfg, 2)

        def transfer(node, state):
            if node.index == acq.index:
                return state | {"fh"}
            return state

        def edge_transfer(source, target, kind, pre, post):
            if kind == EXC and source.index == acq.index:
                return pre
            return post

        result = solve_forward(
            cfg,
            transfer,
            _set_join,
            initial=frozenset(),
            bottom=frozenset(),
            edge_transfer=edge_transfer,
        )
        # Exceptional exit never saw the handle; the normal path did.
        assert "fh" not in result.at_entry(cfg.raise_exit)
        ret = _line_node(cfg, 3)
        assert "fh" in result.at_entry(ret)

    def test_divergence_raises_instead_of_hanging(self):
        # The back edge keeps feeding the loop head fresh states.
        cfg = _cfg(
            "def f(c):\n"
            "    while c:\n"
            "        x = 1\n"
        )
        counter = [0]

        def transfer(node, state):
            # Non-monotone: grows forever.
            counter[0] += 1
            return frozenset({counter[0]})

        with pytest.raises(RuntimeError, match="did not converge"):
            solve_forward(
                cfg,
                transfer,
                _set_join,
                initial=frozenset(),
                bottom=frozenset(),
                max_iterations=50,
            )


class TestPostdominators:
    def test_join_postdominates_both_arms(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    join = 3\n"
        )
        branch = _line_node(cfg, 2)
        arm_a = _line_node(cfg, 3)
        arm_b = _line_node(cfg, 5)
        join = _line_node(cfg, 6)
        podom = postdominators(cfg)
        assert join.index in podom[branch.index]
        assert join.index in podom[arm_a.index]
        assert join.index in podom[arm_b.index]
        # Neither arm post-dominates the branch.
        assert arm_a.index not in podom[branch.index]
        assert arm_b.index not in podom[branch.index]

    def test_raise_only_function_converges(self):
        cfg = _cfg(
            "def f():\n"
            "    raise ValueError('no normal exit')\n"
        )
        podom = postdominators(cfg)
        raiser = _line_node(cfg, 2)
        assert podom[raiser.index] == {raiser.index, cfg.raise_exit.index}
        assert raiser.index in podom[cfg.entry.index]


class TestControlDependence:
    def test_arms_depend_on_branch_join_does_not(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    join = 3\n"
        )
        branch = _line_node(cfg, 2)
        arm_a = _line_node(cfg, 3)
        arm_b = _line_node(cfg, 5)
        join = _line_node(cfg, 6)
        deps = control_dependence(cfg)
        assert branch.index in deps[arm_a.index]
        assert branch.index in deps[arm_b.index]
        assert branch.index not in deps[join.index]

    def test_nested_branches_close_transitively(self):
        cfg = _cfg(
            "def f(c, d):\n"
            "    if c:\n"
            "        if d:\n"
            "            deep = 1\n"
        )
        outer = _line_node(cfg, 2)
        inner = _line_node(cfg, 3)
        deep = _line_node(cfg, 4)
        deps = control_dependence(cfg)
        assert inner.index in deps[deep.index]
        # Transitive closure: what controls the inner branch also
        # controls the statement inside it.
        assert outer.index in deps[deep.index]

    def test_return_after_early_exit_loop_depends_on_the_test(self):
        # The shape the taint rule cares about: a verdict returned only
        # after a guarded loop completed without tripping the early
        # exit is control-dependent on the guard.
        cfg = _cfg(
            "def f(samples):\n"
            "    for s in samples:\n"
            "        if bad(s):\n"
            "            return False\n"
            "    return True\n"
        )
        guard = _line_node(cfg, 3)
        verdict = _line_node(cfg, 5)
        deps = control_dependence(cfg)
        assert guard.index in deps[verdict.index]
