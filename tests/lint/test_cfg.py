"""Golden-structure tests for the CFG builder.

Each test parses a small function, builds its CFG, and asserts the
edges that the dataflow rules depend on: exception edges land on the
right dispatch, ``finally`` bodies are on every abrupt path, ``with``
exits dominate both continuations, and loop back edges close.
"""

import ast

from repro.lint.cfg import EXC, FALSE, NEXT, TRUE, build_cfg


def _cfg(source: str):
    tree = ast.parse(source)
    return build_cfg(tree.body[0], "f")


def _node(cfg, kind=None, line=None, stmt_type=None):
    """The unique node matching the given filters."""
    matches = [
        n
        for n in cfg.nodes
        if (kind is None or n.kind == kind)
        and (line is None or n.line == line)
        and (stmt_type is None or isinstance(n.stmt, stmt_type))
    ]
    assert len(matches) == 1, matches
    return matches[0]


def _succ_kinds(node):
    return sorted((target.index, kind) for target, kind in node.succs)


def _reaches(cfg, source, target, *, avoid=()):
    """True if target is reachable from source without touching avoid."""
    blocked = {n.index for n in avoid}
    seen = set()
    frontier = [source]
    while frontier:
        node = frontier.pop()
        if node.index in seen or node.index in blocked:
            continue
        seen.add(node.index)
        if node is target:
            return True
        frontier.extend(succ for succ, _ in node.succs)
    return False


class TestLinearAndBranch:
    def test_straight_line(self):
        cfg = _cfg("def f():\n    x = 1\n    y = 2\n")
        a = _node(cfg, line=2)
        b = _node(cfg, line=3)
        assert (b, NEXT) in a.succs
        assert (cfg.exit, NEXT) in b.succs

    def test_if_has_true_false_edges(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    y = 2\n"
        )
        branch = _node(cfg, line=2)
        then = _node(cfg, line=3)
        join = _node(cfg, line=4)
        assert (then, TRUE) in branch.succs
        assert (join, FALSE) in branch.succs
        assert (join, NEXT) in then.succs

    def test_early_return_skips_the_rest(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
        first = _node(cfg, line=3)
        second = _node(cfg, line=4)
        assert (cfg.exit, NEXT) in first.succs
        # The early return must not fall through to the second.
        assert all(target is not second for target, _ in first.succs)


class TestLoops:
    def test_while_back_edge_and_exit(self):
        cfg = _cfg(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        )
        head = _node(cfg, line=2)
        body = _node(cfg, line=3)
        after = _node(cfg, line=4)
        assert (body, TRUE) in head.succs
        assert (head, NEXT) in body.succs  # back edge
        assert (after, FALSE) in head.succs

    def test_nested_loops_close_independently(self):
        cfg = _cfg(
            "def f(grid):\n"
            "    for row in grid:\n"
            "        for cell in row:\n"
            "            use(cell)\n"
            "    return 0\n"
        )
        outer = _node(cfg, line=2)
        inner = _node(cfg, line=3)
        body = _node(cfg, line=4)
        assert (inner, TRUE) in outer.succs
        assert (body, TRUE) in inner.succs
        assert (inner, NEXT) in body.succs  # inner back edge
        assert (outer, FALSE) in inner.succs  # inner exhausted -> outer head
        assert outer.index in cfg.loop_bodies
        assert inner.index in cfg.loop_bodies
        inner_members = cfg.loop_bodies[inner.index]
        assert body in inner_members

    def test_break_leaves_the_loop(self):
        cfg = _cfg(
            "def f(n):\n"
            "    while True:\n"
            "        break\n"
            "    return n\n"
        )
        brk = _node(cfg, line=3)
        after = _node(cfg, line=4)
        assert (after, NEXT) in brk.succs

    def test_continue_returns_to_the_head(self):
        cfg = _cfg(
            "def f(items):\n"
            "    for x in items:\n"
            "        continue\n"
        )
        head = _node(cfg, line=2)
        cont = _node(cfg, line=3, stmt_type=ast.Continue)
        assert (head, NEXT) in cont.succs


class TestExceptions:
    def test_call_gets_exception_edge_to_raise_exit(self):
        cfg = _cfg("def f():\n    g()\n")
        call = _node(cfg, line=2)
        assert (cfg.raise_exit, EXC) in call.succs

    def test_pure_shuffle_has_no_exception_edge(self):
        cfg = _cfg("def f(y):\n    x = y\n")
        shuffle = _node(cfg, line=2)
        assert all(kind != EXC for _, kind in shuffle.succs)

    def test_try_except_routes_to_handler(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        h()\n"
        )
        call = _node(cfg, line=3)
        dispatch = _node(cfg, kind="except_dispatch")
        handler = _node(cfg, kind="except")
        assert (dispatch, EXC) in call.succs
        assert (handler, TRUE) in dispatch.succs
        # ValueError does not catch everything: the dispatch escapes too.
        assert (cfg.raise_exit, EXC) in dispatch.succs

    def test_catch_all_handler_does_not_escape(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        dispatch = _node(cfg, kind="except_dispatch")
        assert (cfg.raise_exit, EXC) not in dispatch.succs


class TestFinally:
    def test_finally_on_normal_and_exceptional_paths(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        call = _node(cfg, line=3)
        fin = _node(cfg, kind="finally")
        cleanup = _node(cfg, line=5)
        assert (fin, EXC) in call.succs  # exception runs the finally
        assert (fin, NEXT) in call.succs  # so does fall-through
        assert (cleanup, NEXT) in fin.succs
        # After the finally, both continuations exist.
        assert (cfg.exit, NEXT) in cleanup.succs
        assert (cfg.raise_exit, EXC) in cleanup.succs

    def test_return_unwinds_through_finally(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        ret = _node(cfg, line=3)
        fin = _node(cfg, kind="finally")
        cleanup = _node(cfg, line=5)
        assert (fin, NEXT) in ret.succs
        # The return reaches the exit only through the finally body.
        assert not _reaches(cfg, ret, cfg.exit, avoid=[cleanup])
        assert _reaches(cfg, ret, cfg.exit)

    def test_break_unwinds_through_finally(self):
        cfg = _cfg(
            "def f(items):\n"
            "    for x in items:\n"
            "        try:\n"
            "            break\n"
            "        finally:\n"
            "            cleanup()\n"
            "    return 0\n"
        )
        brk = _node(cfg, line=4, stmt_type=ast.Break)
        cleanup = _node(cfg, line=6)
        after = _node(cfg, line=7)
        assert not _reaches(cfg, brk, after, avoid=[cleanup])
        assert _reaches(cfg, brk, after)


class TestWith:
    def test_with_exit_on_both_continuations(self):
        cfg = _cfg(
            "def f(path):\n"
            "    with open(path) as fh:\n"
            "        fh.read()\n"
            "    return 0\n"
        )
        enter = _node(cfg, line=2, kind="stmt")
        body = _node(cfg, line=3)
        w_exit = _node(cfg, kind="with_exit")
        after = _node(cfg, line=4)
        assert (body, NEXT) in enter.succs
        assert (w_exit, NEXT) in body.succs  # normal fall-through
        assert (w_exit, EXC) in body.succs  # body exception runs __exit__
        assert (after, NEXT) in w_exit.succs
        # A body exception cannot bypass __exit__ on the way out.
        assert not _reaches(cfg, body, cfg.raise_exit, avoid=[w_exit])

    def test_with_exit_owns_no_expressions(self):
        cfg = _cfg(
            "def f(path):\n"
            "    with open(path) as fh:\n"
            "        pass\n"
        )
        w_exit = _node(cfg, kind="with_exit")
        assert w_exit.expressions() == []
        assert w_exit.calls() == []


class TestNodeAccessors:
    def test_if_node_owns_only_its_test(self):
        cfg = _cfg(
            "def f(c):\n"
            "    if c():\n"
            "        g()\n"
        )
        branch = _node(cfg, line=2)
        calls = branch.calls()
        assert len(calls) == 1
        assert isinstance(calls[0].func, ast.Name)
        assert calls[0].func.id == "c"
