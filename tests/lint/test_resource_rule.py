"""Fixture tests for the ``resource-leak`` dataflow rule."""

from repro.lint.rules import ResourceLeakRule

from tests.lint.conftest import lint_with


class TestExceptionalPathLeaks:
    def test_leak_only_on_the_exceptional_path_is_flagged(self, fake_tree):
        # The happy path closes the handle; a raise between acquisition
        # and release strands it.  This is the bug class a syntactic
        # "is close() called somewhere" check can never see.
        root = fake_tree(
            {
                "harness/demo.py": """\
                def handshake(path):
                    fh = open(path)
                    data = fh.read()
                    validate(data)
                    fh.close()
                """
            }
        )
        findings = lint_with(root, ResourceLeakRule())
        assert [f.rule for f in findings] == ["resource-leak"]
        assert findings[0].line == 2
        assert "exceptional paths" in findings[0].message
        assert "normal" not in findings[0].message

    def test_close_in_finally_covers_every_path(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                def handshake(path):
                    fh = open(path)
                    try:
                        data = fh.read()
                        validate(data)
                    finally:
                        fh.close()
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []

    def test_with_statement_covers_every_path(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                def slurp(path):
                    with open(path) as fh:
                        data = fh.read()
                    return data
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []


class TestNormalPathLeaks:
    def test_never_released_handle_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "service/demo.py": """\
                def probe(path):
                    fh = open(path)
                    return 0
                """
            }
        )
        findings = lint_with(root, ResourceLeakRule())
        assert [f.rule for f in findings] == ["resource-leak"]
        assert findings[0].line == 2
        assert "normal" in findings[0].message

    def test_pipe_with_one_end_closed_still_leaks_the_other(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                import os


                def mkpipe():
                    r, w = os.pipe()
                    os.close(r)
                    return 0
                """
            }
        )
        findings = lint_with(root, ResourceLeakRule())
        assert [f.rule for f in findings] == ["resource-leak"]
        assert findings[0].line == 5
        assert "pipe file descriptors" in findings[0].message


class TestEscapes:
    def test_returned_handle_is_the_callers_problem(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                def acquire(path):
                    fh = open(path)
                    return fh
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []

    def test_handle_passed_to_another_call_escapes(self, fake_tree):
        root = fake_tree(
            {
                "harness/demo.py": """\
                def register(path, registry):
                    fh = open(path)
                    registry.track(fh)
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []

    def test_nonlocal_handle_is_owned_by_the_enclosing_scope(self, fake_tree):
        # Regression: a closure assigning through ``nonlocal`` hands the
        # lifetime to the enclosing function (which closes it in its own
        # finally) — the inner scope must not be flagged.
        root = fake_tree(
            {
                "fuzz/demo.py": """\
                def outer(path):
                    fh = None

                    def opener():
                        nonlocal fh
                        fh = open(path)

                    opener()
                    try:
                        return probe(fh)
                    finally:
                        if fh is not None:
                            fh.close()
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []


class TestScope:
    def test_pure_packages_are_exempt(self, fake_tree):
        # Raw OS handles outside harness/service/fuzz are someone
        # else's invariant (the pure checker layers never touch them).
        root = fake_tree(
            {
                "ec/demo.py": """\
                def probe(path):
                    fh = open(path)
                    return 0
                """
            }
        )
        assert lint_with(root, ResourceLeakRule()) == []
