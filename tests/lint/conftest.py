"""Shared fixtures for the repro.lint test suite.

``fake_tree`` builds a minimal ``src/repro`` layout in ``tmp_path`` so
each rule test can lint a hand-written fixture file in isolation (the
engine is always pointed at a repository *root*, never a single file).
"""

import textwrap

import pytest

from repro.lint.engine import run_lint


@pytest.fixture
def fake_tree(tmp_path):
    def build(files):
        counters = tmp_path / "src" / "repro" / "perf" / "counters.py"
        counters.parent.mkdir(parents=True, exist_ok=True)
        counters.write_text('COUNTER_NAMESPACES = ("analysis", "zx")\n')
        for relative, source in files.items():
            target = tmp_path / "src" / "repro" / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return tmp_path

    return build


def lint_with(root, rule):
    """Run exactly one rule (plus engine bookkeeping) over the tree."""
    return run_lint(root, rules=[rule]).findings
