"""Engine-level tests: fingerprints, baseline reconciliation, CLI JSON."""

import json

from repro.lint import cli
from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import run_lint
from repro.lint.rules import DeadlineLoopRule

from tests.lint.conftest import lint_with

VIOLATION = """\
def run(circ, deadline):
    for op in circ:
        total = 1
    return 0
"""


def _one_finding(root):
    findings = lint_with(root, DeadlineLoopRule())
    assert [f.rule for f in findings] == ["deadline-loop"]
    return findings[0]


class TestFingerprints:
    def test_fingerprint_survives_line_shifts(self, fake_tree):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        before = _one_finding(root)
        # Unrelated edits above the finding move its line but must not
        # move its identity — otherwise every refactor invalidates the
        # whole baseline.
        target = root / "src" / "repro" / "ec" / "demo_checker.py"
        target.write_text("# a new leading comment\n\n" + target.read_text())
        after = _one_finding(root)
        assert after.line == before.line + 2
        assert after.fingerprint == before.fingerprint

    def test_identical_lines_get_distinct_fingerprints(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    for op in circ:
                        total = 1
                    return 0


                def rerun(circ, deadline):
                    for op in circ:
                        total = 1
                    return 0
                """
            }
        )
        findings = lint_with(root, DeadlineLoopRule())
        assert [f.rule for f in findings] == ["deadline-loop"] * 2
        assert findings[0].fingerprint != findings[1].fingerprint


class TestBaseline:
    def _baseline_for(self, root, finding, reason="known debt"):
        path = root / "tools" / "lint_baseline.json"
        path.parent.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": finding.fingerprint,
                            "rule": finding.rule,
                            "path": "src/repro/ec/demo_checker.py",
                            "reason": reason,
                        }
                    ],
                }
            )
        )
        return path

    def test_matched_entry_grandfathers_the_finding(self, fake_tree):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        path = self._baseline_for(root, _one_finding(root))
        report = run_lint(
            root, rules=[DeadlineLoopRule()], baseline=Baseline.load(path)
        )
        assert report.ok
        assert report.findings == []
        assert [f.rule for f in report.grandfathered] == ["deadline-loop"]

    def test_entry_without_reason_is_an_error(self, fake_tree):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        path = self._baseline_for(root, _one_finding(root), reason="  ")
        report = run_lint(
            root, rules=[DeadlineLoopRule()], baseline=Baseline.load(path)
        )
        assert not report.ok
        assert [f.rule for f in report.findings] == ["unexplained-baseline"]

    def test_entry_matching_nothing_is_stale(self, fake_tree):
        # Fixed code must force the baseline to shrink.
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    for op in circ:
                        _check_deadline(deadline)
                    return 0
                """
            }
        )
        path = root / "tools" / "lint_baseline.json"
        path.parent.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": "feedfacedeadbeef",
                            "rule": "deadline-loop",
                            "path": "src/repro/ec/demo_checker.py",
                            "reason": "was fixed since",
                        }
                    ],
                }
            )
        )
        report = run_lint(
            root, rules=[DeadlineLoopRule()], baseline=Baseline.load(path)
        )
        assert not report.ok
        assert [f.rule for f in report.findings] == ["stale-baseline"]

    def test_write_baseline_leaves_reasons_blank(self, fake_tree, tmp_path):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        finding = _one_finding(root)
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        loaded = Baseline.load(path)
        assert [e.fingerprint for e in loaded.entries] == [finding.fingerprint]
        # Blank reasons make a regenerated baseline fail the lint until
        # a human fills them in.
        assert loaded.unexplained_entries() == loaded.entries


class TestCli:
    def test_json_report_on_a_clean_tree(self, fake_tree, tmp_path, capsys):
        root = fake_tree(
            {
                "ec/demo_checker.py": """\
                def run(circ, deadline):
                    for op in circ:
                        _check_deadline(deadline)
                    return 0
                """
            }
        )
        out = tmp_path / "report.json"
        code = cli.main(["--root", str(root), "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert "all invariants hold" in capsys.readouterr().out

    def test_json_report_on_a_dirty_tree(self, fake_tree, tmp_path, capsys):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        out = tmp_path / "report.json"
        code = cli.main(["--root", str(root), "--json", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        rules = {f["rule"] for f in payload["findings"]}
        assert "deadline-loop" in rules
        finding = next(
            f for f in payload["findings"] if f["rule"] == "deadline-loop"
        )
        assert finding["line"] == 2
        assert finding["fingerprint"]

    def test_json_to_stdout_is_pure_json(self, fake_tree, capsys):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        code = cli.main(["--root", str(root), "--json", "-"])
        assert code == 1
        captured = capsys.readouterr()
        # The machine report owns stdout; the human rendering moves to
        # stderr so ``--json - | jq`` works.
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert "deadline-loop" in captured.err

    def test_missing_root_is_an_operational_error(self, tmp_path, capsys):
        code = cli.main(["--root", str(tmp_path / "nowhere")])
        assert code == 2
        assert "no src/repro tree" in capsys.readouterr().err

    def test_write_baseline_round_trip(self, fake_tree, capsys):
        root = fake_tree({"ec/demo_checker.py": VIOLATION})
        assert cli.main(["--root", str(root), "--write-baseline"]) == 0
        # The fresh baseline has blank reasons, so the next run fails
        # with unexplained-baseline rather than silently passing.
        assert cli.main(["--root", str(root)]) == 1
        assert "unexplained-baseline" in capsys.readouterr().out
