"""Fixture tests for the ``soundness-taint`` dataflow rule."""

import shutil
from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.rules import SoundnessTaintRule

from tests.lint.conftest import lint_with

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExplicitFlows:
    def test_rng_draw_reaching_result_kwarg_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(circ, rng):
                    cost = rng.random()
                    return EquivalenceCheckingResult(
                        Equivalence.EQUIVALENT, cost=cost
                    )
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 3
        assert "data flow" in findings[0].message
        assert "Equivalence.EQUIVALENT" in findings[0].message

    def test_deterministic_verdict_is_clean(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2):
                    if structurally_equal(c1, c2):
                        return Equivalence.EQUIVALENT
                    return Equivalence.NOT_EQUIVALENT
                """
            }
        )
        assert lint_with(root, SoundnessTaintRule()) == []

    def test_modules_outside_scope_are_exempt(self, fake_tree):
        root = fake_tree(
            {
                "analysis/demo.py": """\
                def check(circ, rng):
                    cost = rng.random()
                    return EquivalenceCheckingResult(
                        Equivalence.EQUIVALENT, cost=cost
                    )
                """
            }
        )
        assert lint_with(root, SoundnessTaintRule()) == []


class TestImplicitFlows:
    def test_verdict_under_probabilistic_branch_is_flagged(self, fake_tree):
        # The laundering shape: agreement of random stimuli decides a
        # positive proof.  No tainted value flows *into* the verdict —
        # only the branch condition is probabilistic.
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2, rng):
                    s = generate_stimulus(rng, 4)
                    if simulate(c1, s) == simulate(c2, s):
                        return Equivalence.EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 4
        assert "probabilistic branch condition" in findings[0].message

    def test_refutation_without_witness_is_flagged(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2, rng):
                    s = generate_stimulus(rng, 4)
                    if mismatch(c1, c2, s):
                        return Equivalence.NOT_EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 4
        assert "refuting" in findings[0].message


class TestWitnessBit:
    def test_witnessed_refutation_is_sound(self, fake_tree):
        # A fidelity mismatch on a random stimulus is a deterministic
        # proof of non-equivalence: prob+witness excuses NOT_EQUIVALENT.
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2, rng):
                    s = generate_stimulus(rng, 4)
                    f = fidelity(s)
                    if f < 0.5:
                        return Equivalence.NOT_EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        assert lint_with(root, SoundnessTaintRule()) == []

    def test_witness_never_excuses_a_positive_proof(self, fake_tree):
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2, rng):
                    s = generate_stimulus(rng, 4)
                    f = fidelity(s)
                    if f > 0.999:
                        return Equivalence.EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 5
        assert "positively proven" in findings[0].message


class TestSanitizer:
    def test_dispatching_on_a_verdict_attribute_is_clean(self, fake_tree):
        # Reading ``.equivalence`` off a result declassifies: the ladder
        # was already enforced where the result was constructed.
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(circ, rng):
                    result = run_sim(circ, rng.random())
                    if result.equivalence is Equivalence.EQUIVALENT:
                        return Equivalence.EQUIVALENT
                    return Equivalence.NOT_EQUIVALENT
                """
            }
        )
        assert lint_with(root, SoundnessTaintRule()) == []


class TestInterprocedural:
    def test_taint_flows_through_a_helper_return(self, fake_tree):
        # The syntactic engine could never see this: the probabilistic
        # source is hidden behind a module-local helper call.
        root = fake_tree(
            {
                "ec/demo.py": """\
                def draw(rng, width):
                    return generate_stimulus(rng, width)

                def check(c1, c2, rng):
                    s = draw(rng, 3)
                    if simulate(c1, s) == simulate(c2, s):
                        return Equivalence.EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 7


class TestContainerMutation:
    def test_appended_stimuli_taint_the_batch(self, fake_tree):
        # The batched-simulation shape: stimuli accumulate in a list and
        # the list (not any single stimulus) feeds the comparison.
        root = fake_tree(
            {
                "ec/demo.py": """\
                def check(c1, c2, rng):
                    stimuli = []
                    for _ in range(8):
                        stimuli.append(generate_stimulus(rng, 4))
                    outs = simulate_batch(c1, c2, stimuli)
                    if outs_agree(outs):
                        return Equivalence.EQUIVALENT
                    return Equivalence.PROBABLY_EQUIVALENT
                """
            }
        )
        findings = lint_with(root, SoundnessTaintRule())
        assert [f.rule for f in findings] == ["soundness-taint"]
        assert findings[0].line == 7


class TestLaunderingDemo:
    def test_promoting_probable_to_proven_in_the_real_tree_is_caught(
        self, tmp_path
    ):
        # Seeded-defect demo: copy the real source tree, apply the exact
        # one-token soundness laundering edit the rule exists to catch —
        # the simulation checker claiming EQUIVALENT where it reports
        # PROBABLY_EQUIVALENT — and assert the rule fires on the edited
        # file (the unedited tree is clean, per TestRealTreeIsClean).
        destination = tmp_path / "src" / "repro"
        shutil.copytree(
            REPO_ROOT / "src" / "repro",
            destination,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        target = destination / "ec" / "sim_checker.py"
        source = target.read_text()
        assert "Equivalence.PROBABLY_EQUIVALENT" in source
        target.write_text(
            source.replace(
                "Equivalence.PROBABLY_EQUIVALENT", "Equivalence.EQUIVALENT"
            )
        )
        all_findings = run_lint(tmp_path, rules=[SoundnessTaintRule()]).findings
        # A single-rule run leaves every other rule's suppressions
        # unmatched (stale-allow); only the taint verdicts matter here.
        findings = [f for f in all_findings if f.rule == "soundness-taint"]
        assert findings, "laundering edit went undetected"
        assert all(f.path == target for f in findings)
