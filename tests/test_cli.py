"""Tests for the command-line interface (`repro.cli`)."""

import json

import pytest

from repro.bench.algorithms import ghz_state, qft
from repro.circuit import circuit_to_qasm
from repro.cli import main


@pytest.fixture
def qasm_files(tmp_path):
    original = tmp_path / "ghz.qasm"
    original.write_text(circuit_to_qasm(ghz_state(3)))
    other = tmp_path / "qft.qasm"
    other.write_text(circuit_to_qasm(qft(3)))
    return original, other


class TestVerifyCommand:
    def test_equivalent_exit_code(self, qasm_files, capsys):
        original, _ = qasm_files
        code = main(["verify", str(original), str(original)])
        assert code == 0
        assert "equivalent" in capsys.readouterr().out

    def test_non_equivalent_exit_code(self, qasm_files):
        original, other = qasm_files
        assert main(["verify", str(original), str(other)]) == 1

    def test_zx_no_information_exit_code(self, qasm_files):
        original, other = qasm_files
        code = main(
            ["verify", str(original), str(other), "--strategy", "zx"]
        )
        assert code in (1, 2)

    def test_verbose_prints_statistics(self, qasm_files, capsys):
        original, _ = qasm_files
        main([
            "verify", str(original), str(original),
            "--strategy", "alternating", "-v",
        ])
        assert "max_dd_size" in capsys.readouterr().out

    def test_stimuli_and_seed_options(self, qasm_files):
        original, _ = qasm_files
        code = main([
            "verify", str(original), str(original),
            "--strategy", "simulation", "--stimuli", "global_quantum",
            "--simulations", "3", "--seed", "7",
        ])
        assert code == 0


class TestCompileCommand:
    def test_compile_writes_qasm_and_sidecar(self, qasm_files, tmp_path):
        original, _ = qasm_files
        out = tmp_path / "compiled.qasm"
        code = main([
            "compile", str(original), "--device", "line:5",
            "-o", str(out),
        ])
        assert code == 0
        assert out.exists()
        sidecar = json.loads((tmp_path / "compiled.qasm.layout.json").read_text())
        assert "initial_layout" in sidecar
        assert "output_permutation" in sidecar

    def test_compiled_output_verifies_against_original(
        self, qasm_files, tmp_path
    ):
        """The full CLI round trip: compile, then verify via sidecar."""
        original, _ = qasm_files
        out = tmp_path / "compiled.qasm"
        main(["compile", str(original), "--device", "line:5", "-o", str(out)])
        code = main(["verify", str(original), str(out)])
        assert code == 0

    def test_lookahead_routing_option(self, qasm_files, tmp_path):
        original, _ = qasm_files
        out = tmp_path / "c.qasm"
        code = main([
            "compile", str(original), "--device", "grid:2x3",
            "--routing-method", "lookahead", "-o", str(out),
        ])
        assert code == 0

    def test_unknown_device_rejected(self, qasm_files, tmp_path):
        original, _ = qasm_files
        with pytest.raises(SystemExit):
            main([
                "compile", str(original), "--device", "torus:9",
                "-o", str(tmp_path / "x.qasm"),
            ])


class TestStatsCommand:
    def test_stats_output(self, qasm_files, capsys):
        original, _ = qasm_files
        assert main(["stats", str(original)]) == 0
        out = capsys.readouterr().out
        assert "qubits:          3" in out
        assert "cx=2" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_strategy_rejected(self, qasm_files):
        original, _ = qasm_files
        with pytest.raises(SystemExit):
            main([
                "verify", str(original), str(original),
                "--strategy", "psychic",
            ])
