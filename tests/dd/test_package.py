"""Unit tests for the DD package algebra (`repro.dd.package`)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.circuit.unitary import statevector
from repro.dd import (
    DDPackage,
    edge_to_matrix,
    edge_to_vector,
    matrix_dd_size,
    vector_dd_size,
)
from repro.dd.gates import circuit_dd, operation_dd, simulate_circuit_dd
from tests.conftest import random_circuit


@pytest.fixture
def pkg():
    return DDPackage()


class TestElementaryDiagrams:
    def test_basis_state_vector(self, pkg):
        for bits in range(8):
            vec = edge_to_vector(pkg.basis_state(3, bits), 3)
            expected = np.zeros(8)
            expected[bits] = 1.0
            np.testing.assert_allclose(vec, expected, atol=1e-12)

    def test_identity_matrix(self, pkg):
        np.testing.assert_allclose(
            edge_to_matrix(pkg.identity(3), 3), np.eye(8), atol=1e-12
        )

    def test_identity_is_linear_size(self, pkg):
        """Paper Fig. 3b: the identity DD has n nodes."""
        for n in (1, 4, 16, 65):
            assert matrix_dd_size(pkg.identity(n)) == n

    def test_identity_cached(self, pkg):
        assert pkg.identity(5).node is pkg.identity(5).node

    def test_zero_edges(self, pkg):
        assert pkg.zero_matrix_edge().is_zero
        assert pkg.zero_vector_edge().is_zero

    def test_layered_kron(self, pkg):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        edge = pkg.layered_kron(2, {0: x})
        np.testing.assert_allclose(
            edge_to_matrix(edge, 2), np.kron(np.eye(2), x), atol=1e-12
        )
        edge = pkg.layered_kron(2, {1: x})
        np.testing.assert_allclose(
            edge_to_matrix(edge, 2), np.kron(x, np.eye(2)), atol=1e-12
        )


class TestCanonicity:
    def test_same_function_same_node(self, pkg):
        """Canonicity: equal circuits yield the identical root node."""
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuit_dd(pkg, a).node is circuit_dd(pkg, b).node

    def test_hadamard_squared_is_identity_node(self, pkg):
        hh = QuantumCircuit(2).h(0).h(0)
        edge = circuit_dd(pkg, hh)
        assert edge.node is pkg.identity(2).node

    def test_commuting_constructions_agree(self, pkg):
        a = QuantumCircuit(2).z(0).x(1)
        b = QuantumCircuit(2).x(1).z(0)
        ea, eb = circuit_dd(pkg, a), circuit_dd(pkg, b)
        assert ea.node is eb.node
        assert ea.weight == eb.weight

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_canonicity_property(self, seed):
        """G and (G†)† build the very same canonical DD."""
        pkg = DDPackage()
        circuit = random_circuit(3, 12, seed=seed)
        direct = circuit_dd(pkg, circuit)
        double_inverse = circuit_dd(pkg, circuit.inverse().inverse())
        assert direct.node is double_inverse.node


class TestAlgebra:
    @pytest.mark.parametrize("seed", range(4))
    def test_multiply_matches_dense(self, seed, pkg):
        a = random_circuit(3, 10, seed=seed)
        b = random_circuit(3, 10, seed=seed + 100)
        product = pkg.multiply(circuit_dd(pkg, a), circuit_dd(pkg, b))
        np.testing.assert_allclose(
            edge_to_matrix(product, 3),
            circuit_unitary(a) @ circuit_unitary(b),
            atol=1e-8,
        )

    def test_add_matches_dense(self, pkg):
        a = random_circuit(2, 8, seed=1)
        b = random_circuit(2, 8, seed=2)
        total = pkg.add(circuit_dd(pkg, a), circuit_dd(pkg, b))
        np.testing.assert_allclose(
            edge_to_matrix(total, 2),
            circuit_unitary(a) + circuit_unitary(b),
            atol=1e-8,
        )

    def test_add_zero_identity(self, pkg):
        edge = circuit_dd(pkg, random_circuit(2, 5, seed=3))
        assert pkg.add(edge, pkg.zero_matrix_edge()) == edge
        assert pkg.add(pkg.zero_matrix_edge(), edge) == edge

    def test_conjugate_transpose_matches_dense(self, pkg):
        circuit = random_circuit(3, 12, seed=5)
        adjoint = pkg.conjugate_transpose(circuit_dd(pkg, circuit))
        np.testing.assert_allclose(
            edge_to_matrix(adjoint, 3),
            circuit_unitary(circuit).conj().T,
            atol=1e-8,
        )

    def test_trace_matches_dense(self, pkg):
        circuit = random_circuit(3, 12, seed=6)
        edge = circuit_dd(pkg, circuit)
        assert pkg.trace(edge) == pytest.approx(
            np.trace(circuit_unitary(circuit)), abs=1e-8
        )

    def test_unitarity_via_product(self, pkg):
        circuit = random_circuit(3, 15, seed=7)
        edge = circuit_dd(pkg, circuit)
        product = pkg.multiply(pkg.conjugate_transpose(edge), edge)
        assert pkg.is_identity(product, 3)

    def test_height_mismatch_rejected(self, pkg):
        with pytest.raises(ValueError):
            pkg.add(pkg.identity(2), pkg.identity(3))
        with pytest.raises(ValueError):
            pkg.multiply(pkg.identity(2), pkg.identity(3))


class TestVectors:
    @pytest.mark.parametrize("seed", range(4))
    def test_simulation_matches_dense(self, seed, pkg):
        circuit = random_circuit(3, 15, seed=seed)
        state = simulate_circuit_dd(pkg, circuit)
        np.testing.assert_allclose(
            edge_to_vector(state, 3), statevector(circuit), atol=1e-8
        )

    def test_inner_product_matches_dense(self, pkg):
        a = random_circuit(3, 10, seed=11)
        b = random_circuit(3, 10, seed=12)
        va, vb = simulate_circuit_dd(pkg, a), simulate_circuit_dd(pkg, b)
        dense = np.vdot(statevector(a), statevector(b))
        assert pkg.inner_product(va, vb) == pytest.approx(dense, abs=1e-8)

    def test_fidelity_of_same_state_is_one(self, pkg):
        circuit = random_circuit(3, 10, seed=13)
        state = simulate_circuit_dd(pkg, circuit)
        assert pkg.fidelity(state, state) == pytest.approx(1.0)

    def test_add_vectors_matches_dense(self, pkg):
        a = simulate_circuit_dd(pkg, random_circuit(2, 6, seed=14))
        b = simulate_circuit_dd(pkg, random_circuit(2, 6, seed=15))
        total = pkg.add_vectors(a, b)
        np.testing.assert_allclose(
            edge_to_vector(total, 2),
            edge_to_vector(a, 2) + edge_to_vector(b, 2),
            atol=1e-8,
        )

    def test_vector_dd_size(self, pkg):
        ghz = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2)
        state = simulate_circuit_dd(pkg, ghz)
        # one shared node at the top level, two per level below
        assert vector_dd_size(state) == 5


class TestIdentityPredicates:
    def test_is_identity_accepts_phase(self, pkg):
        circuit = QuantumCircuit(2).z(0).x(0).z(0).x(0)  # = -I
        edge = circuit_dd(pkg, circuit)
        assert pkg.is_identity(edge, 2, up_to_global_phase=True)
        assert not pkg.is_identity(edge, 2, up_to_global_phase=False)

    def test_hs_fidelity_identity(self, pkg):
        assert pkg.hilbert_schmidt_fidelity(pkg.identity(3), 3) == pytest.approx(1.0)

    def test_hs_fidelity_traceless(self, pkg):
        x_edge = circuit_dd(pkg, QuantumCircuit(1).x(0))
        assert pkg.hilbert_schmidt_fidelity(x_edge, 1) == pytest.approx(0.0)


class TestGateCache:
    def test_operation_dd_memoized(self, pkg):
        from repro.circuit.gate import Operation

        op = Operation("x", (1,), (0,))
        first = operation_dd(pkg, op, 3)
        second = operation_dd(pkg, op, 3)
        assert first is second
