"""Tests for the array-native DD engine (`repro.dd.array_package` /
`repro.dd.array_store`).

The struct-of-arrays node store and the packed-integer algebra must be
drop-in equivalents of the object engine: canonical handles play the
role of node identity, the open-addressed unique table the role of the
dict unique tables (including growth from pathologically small
capacities), and dense exports must agree with numpy to the last ulp
the shared complex table admits.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.dd import (
    ArrayDDPackage,
    ComplexTable,
    DDPackage,
    NodeStore,
    edge_to_matrix,
    edge_to_vector,
    matrix_dd_size,
    matrix_signature,
    vector_dd_size,
    vector_signature,
)
from repro.dd.array_package import EDGE_SHIFT, WEIGHT_MASK, ZERO_EDGE
from repro.dd.export import matrix_dd_to_dot
from repro.dd.gates import circuit_dd, simulate_circuit_dd
from tests.conftest import assert_allclose, random_circuit


@pytest.fixture
def pkg():
    return ArrayDDPackage()


class TestNodeStore:
    def test_terminal_is_handle_zero(self):
        store = NodeStore(2)
        assert len(store) == 1
        assert store.num_nodes == 0
        assert store.levels[0] == -1

    def test_lookup_is_canonical(self):
        store = NodeStore(2)
        handle1, created1 = store.lookup_or_insert(0, (0, 1, 0, 0))
        handle2, created2 = store.lookup_or_insert(0, (0, 1, 0, 0))
        assert created1 and not created2
        assert handle1 == handle2 == 1

    def test_distinct_fields_distinct_handles(self):
        store = NodeStore(2)
        a, _ = store.lookup_or_insert(0, (0, 1, 0, 0))
        b, _ = store.lookup_or_insert(0, (0, 0, 0, 1))
        c, _ = store.lookup_or_insert(1, (0, 1, 0, 0))
        assert len({a, b, c}) == 3

    def test_arity_and_capacity_validation(self):
        with pytest.raises(ValueError):
            NodeStore(1)
        with pytest.raises(ValueError):
            NodeStore(2, slot_capacity=0)

    def test_growth_from_tiny_capacity(self):
        """A 1-slot table must survive arbitrary insertions via growth."""
        store = NodeStore(2, slot_capacity=1)
        handles = {}
        for level in range(6):
            for wid in range(1, 9):
                handle, created = store.lookup_or_insert(
                    0, (0, wid, 0, level)
                )
                if (level, wid) in handles:
                    assert not created
                    assert handle == handles[(level, wid)]
                else:
                    assert created
                    handles[(level, wid)] = handle
        assert store.grows > 0
        assert store.num_nodes == len(handles)
        # Every node is still found after all the rehashing.
        for (level, wid), expected in handles.items():
            handle, created = store.lookup_or_insert(0, (0, wid, 0, level))
            assert not created and handle == expected

    def test_collision_chains_verified_by_fields(self):
        """Probe-chain candidates are verified against the field arrays,
        so hash collisions can never alias two distinct nodes."""
        store = NodeStore(4, slot_capacity=2)
        seen = set()
        for i in range(1, 40):
            handle, created = store.lookup_or_insert(
                i % 3, (0, i, 0, 0, 0, 0, 0, 0)
            )
            assert created
            assert handle not in seen
            seen.add(handle)
        assert store.collisions > 0
        stats = store.stats()
        assert stats["nodes"] == 39
        assert stats["lookups"] == 39
        assert stats["slot_capacity"] >= 64

    def test_as_arrays_layout(self):
        store = NodeStore(2)
        store.lookup_or_insert(3, (0, 1, 0, 2))
        arrays = store.as_arrays()
        assert arrays["levels"].tolist() == [-1, 3]
        assert arrays["children"].shape == (2, 2)
        assert arrays["weights"][1].tolist() == [1, 2]


class TestArrayAlgebra:
    def test_identity_matrix(self, pkg):
        dense = edge_to_matrix(pkg.identity(3), 3, pkg)
        assert_allclose(dense, np.eye(8))

    def test_basis_state(self, pkg):
        dense = edge_to_vector(pkg.basis_state(3, bits=0b101), 3, pkg)
        expected = np.zeros(8, dtype=complex)
        expected[0b101] = 1.0
        assert_allclose(dense, expected)

    def test_circuit_matrix_matches_object_engine(self):
        circuit = random_circuit(3, 20, seed=1)
        obj = DDPackage()
        arr = ArrayDDPackage()
        expected = edge_to_matrix(circuit_dd(obj, circuit), 3)
        actual = edge_to_matrix(circuit_dd(arr, circuit), 3, arr)
        assert_allclose(actual, expected)

    def test_simulation_matches_object_engine(self):
        circuit = random_circuit(3, 20, seed=2)
        obj = DDPackage()
        arr = ArrayDDPackage()
        expected = edge_to_vector(simulate_circuit_dd(obj, circuit), 3)
        actual = edge_to_vector(simulate_circuit_dd(arr, circuit), 3, arr)
        assert_allclose(actual, expected)

    def test_unitarity_via_conjugate_transpose(self, pkg):
        circuit = random_circuit(3, 15, seed=3)
        u = circuit_dd(pkg, circuit)
        product = pkg.multiply(pkg.conjugate_transpose(u), u)
        assert pkg.is_identity(product, 3)

    def test_fidelity_of_equal_states(self, pkg):
        circuit = random_circuit(3, 12, seed=4)
        state = simulate_circuit_dd(pkg, circuit)
        assert pkg.fidelity(state, state) == pytest.approx(1.0)

    def test_trace_of_identity(self, pkg):
        assert pkg.trace(pkg.identity(4)) == pytest.approx(16.0)

    def test_zero_edge_weight_mask(self, pkg):
        """`is_zero` is a weight-id test, never `edge == 0`: arithmetic
        can snap a weight to zero under a non-terminal handle."""
        assert ZERO_EDGE & WEIGHT_MASK == 0
        ghz = QuantumCircuit(2).h(0).cx(0, 1)
        root = circuit_dd(pkg, ghz)
        assert root & WEIGHT_MASK != 0
        assert root >> EDGE_SHIFT != 0

    def test_tiny_unique_table_same_results(self):
        """Growth from a 2-slot unique table is behaviour-invisible."""
        circuit = random_circuit(4, 30, seed=5)
        table = ComplexTable()
        small = ArrayDDPackage(complex_table=table, unique_table_slots=2)
        table2 = ComplexTable()
        big = ArrayDDPackage(complex_table=table2, unique_table_slots=1 << 12)
        dense_small = edge_to_matrix(circuit_dd(small, circuit), 4, small)
        dense_big = edge_to_matrix(circuit_dd(big, circuit), 4, big)
        assert_allclose(dense_small, dense_big, atol=0)
        assert small.mat.grows > 0

    def test_store_statistics_shape(self, pkg):
        circuit_dd(pkg, QuantumCircuit(2).h(0).cx(0, 1))
        stats = pkg.store_statistics()
        assert stats["matrix_store"]["nodes"] > 0
        assert stats["matrix_store"]["hits"] >= 0
        assert set(stats) == {"matrix_store", "vector_store"}

    def test_dd_sizes_match_object_engine(self):
        circuit = random_circuit(4, 25, seed=6)
        obj = DDPackage()
        arr = ArrayDDPackage()
        obj_root = circuit_dd(obj, circuit)
        arr_root = circuit_dd(arr, circuit)
        assert matrix_dd_size(arr_root, arr) == matrix_dd_size(obj_root)
        obj_state = simulate_circuit_dd(obj, circuit)
        arr_state = simulate_circuit_dd(arr, circuit)
        assert vector_dd_size(arr_state, arr) == vector_dd_size(obj_state)


class TestHandleExportRoundTrip:
    def test_dense_round_trip(self, pkg):
        """Handle-based dense export is deterministic across packages."""
        circuit = random_circuit(3, 18, seed=7)
        root = circuit_dd(pkg, circuit)
        dense = edge_to_matrix(root, 3, pkg)
        fresh = ArrayDDPackage()
        rebuilt = circuit_dd(fresh, circuit)
        assert matrix_dd_size(rebuilt, fresh) == matrix_dd_size(root, pkg)
        assert_allclose(edge_to_matrix(rebuilt, 3, fresh), dense, atol=0)

    def test_dot_rendering_from_handles(self, pkg):
        ghz = QuantumCircuit(2).h(0).cx(0, 1)
        root = circuit_dd(pkg, ghz)
        dot = matrix_dd_to_dot(root, pkg=pkg)
        assert dot.startswith("digraph dd {")
        assert dot.rstrip().endswith("}")
        assert "terminal" in dot
        # One circle node per DD node.
        assert dot.count("shape=circle") == matrix_dd_size(root, pkg)

    def test_dot_rendering_matches_object_engine(self):
        """Both engines render the same graph for the same circuit."""
        ghz = QuantumCircuit(2).h(0).cx(0, 1)
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        obj_dot = matrix_dd_to_dot(circuit_dd(obj, ghz))
        arr_dot = matrix_dd_to_dot(circuit_dd(arr, ghz), pkg=arr)
        assert obj_dot == arr_dot

    def test_dot_zero_edge(self, pkg):
        dot = matrix_dd_to_dot(ZERO_EDGE, pkg=pkg)
        assert "root ->" not in dot

    def test_missing_package_is_an_error(self, pkg):
        root = circuit_dd(pkg, QuantumCircuit(1).h(0))
        with pytest.raises(ValueError):
            edge_to_matrix(root, 1)
        with pytest.raises(ValueError):
            matrix_dd_size(root)
        with pytest.raises(ValueError):
            matrix_signature(root)


class TestSignatures:
    def test_cross_engine_signatures_equal(self):
        circuit = random_circuit(3, 20, seed=8)
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        assert matrix_signature(circuit_dd(obj, circuit)) == matrix_signature(
            circuit_dd(arr, circuit), arr
        )
        assert vector_signature(
            simulate_circuit_dd(obj, circuit)
        ) == vector_signature(simulate_circuit_dd(arr, circuit), arr)

    def test_different_circuits_different_signatures(self):
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        a = matrix_signature(circuit_dd(obj, QuantumCircuit(2).h(0)))
        b = matrix_signature(circuit_dd(obj, QuantumCircuit(2).h(1)))
        assert a != b

    def test_signature_comparison_is_cheap_on_deep_chains(self):
        """Hash-consing keeps equality linear on identity-like chains
        whose naive tree unfolding is exponential in depth."""
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        assert matrix_signature(obj.identity(64)) == matrix_signature(
            arr.identity(64), arr
        )
