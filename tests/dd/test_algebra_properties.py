"""Property-based algebra laws of the DD package.

Canonical decision diagrams form a matrix algebra; these hypothesis-driven
tests check the algebraic laws — associativity, distributivity, the adjoint
anti-homomorphism, trace cyclicity.  Equality is checked numerically: node
identity only holds when both computation orders produce bit-identical
interned weights, and as the paper notes (Section 4.1), canonical diagrams
"might not be exactly identical due to numerical imprecisions" — different
evaluation orders accumulate different rounding.  Where exact identity is
robust (e.g. commutativity of addition via the cache's canonical operand
order) we do assert it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dd import DDPackage, edge_to_matrix, edge_to_vector
from repro.dd.gates import circuit_dd, simulate_circuit_dd
from tests.conftest import random_circuit

_N = 3


def _close(pkg, left, right, n):
    np.testing.assert_allclose(
        edge_to_matrix(left, n), edge_to_matrix(right, n), atol=1e-8
    )


def _three_circuits(seed):
    return (
        random_circuit(_N, 8, seed=seed),
        random_circuit(_N, 8, seed=seed + 1_000_000),
        random_circuit(_N, 8, seed=seed + 2_000_000),
    )


class TestAlgebraLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_multiplication_associative(self, seed):
        pkg = DDPackage()
        a, b, c = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        left = pkg.multiply(pkg.multiply(a, b), c)
        right = pkg.multiply(a, pkg.multiply(b, c))
        _close(pkg, left, right, _N)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_left_distributivity(self, seed):
        pkg = DDPackage()
        a, b, c = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        left = pkg.multiply(a, pkg.add(b, c))
        right = pkg.add(pkg.multiply(a, b), pkg.multiply(a, c))
        np.testing.assert_allclose(
            edge_to_matrix(left, _N), edge_to_matrix(right, _N), atol=1e-8
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_adjoint_anti_homomorphism(self, seed):
        pkg = DDPackage()
        a, b, _ = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        left = pkg.conjugate_transpose(pkg.multiply(a, b))
        right = pkg.multiply(
            pkg.conjugate_transpose(b), pkg.conjugate_transpose(a)
        )
        _close(pkg, left, right, _N)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_adjoint_involutive(self, seed):
        pkg = DDPackage()
        a, _, _ = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        double = pkg.conjugate_transpose(pkg.conjugate_transpose(a))
        _close(pkg, double, a, _N)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_trace_cyclic(self, seed):
        pkg = DDPackage()
        a, b, _ = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        tr_ab = pkg.trace(pkg.multiply(a, b))
        tr_ba = pkg.trace(pkg.multiply(b, a))
        assert tr_ab == pytest.approx(tr_ba, abs=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_addition_commutative_and_canonical(self, seed):
        pkg = DDPackage()
        a, b, _ = [circuit_dd(pkg, x) for x in _three_circuits(seed)]
        left = pkg.add(a, b)
        right = pkg.add(b, a)
        assert left.node is right.node
        assert left.weight == pytest.approx(right.weight, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matrix_vector_consistent_with_matrix_product(self, seed):
        """(A B)|0...0> equals A (B |0...0>)."""
        pkg = DDPackage()
        circuit_a, circuit_b, _ = _three_circuits(seed)
        a = circuit_dd(pkg, circuit_a)
        b = circuit_dd(pkg, circuit_b)
        zero = pkg.basis_state(_N)
        via_matrix = pkg.multiply_matrix_vector(pkg.multiply(a, b), zero)
        via_vector = pkg.multiply_matrix_vector(
            a, pkg.multiply_matrix_vector(b, zero)
        )
        np.testing.assert_allclose(
            edge_to_vector(via_matrix, _N),
            edge_to_vector(via_vector, _N),
            atol=1e-8,
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_inner_product_conjugate_symmetry(self, seed):
        pkg = DDPackage()
        circuit_a, circuit_b, _ = _three_circuits(seed)
        va = simulate_circuit_dd(pkg, circuit_a)
        vb = simulate_circuit_dd(pkg, circuit_b)
        ab = pkg.inner_product(va, vb)
        ba = pkg.inner_product(vb, va)
        assert ab == pytest.approx(ba.conjugate(), abs=1e-9)

    def test_clear_compute_tables_preserves_results(self):
        pkg = DDPackage()
        a = circuit_dd(pkg, random_circuit(_N, 10, seed=5))
        b = circuit_dd(pkg, random_circuit(_N, 10, seed=6))
        before = pkg.multiply(a, b)
        pkg.clear_compute_tables()
        after = pkg.multiply(a, b)
        assert before.node is after.node
        assert before.weight == after.weight
