"""Unit tests for the tolerance-aware complex table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE


class TestLookup:
    def test_exact_seeds_present(self):
        table = ComplexTable()
        for seed in (0j, 1 + 0j, -1 + 0j, 1j, -1j):
            assert table.lookup(seed) == seed

    def test_merges_within_tolerance(self):
        table = ComplexTable(1e-10)
        canonical = table.lookup(0.5 + 0.5j)
        merged = table.lookup(0.5 + 1e-11 + 0.5j)
        assert merged is canonical

    def test_near_zero_snaps_to_zero(self):
        table = ComplexTable(1e-10)
        assert table.lookup(1e-12 + 1e-12j) == 0j

    def test_near_one_snaps_to_one(self):
        table = ComplexTable(1e-10)
        assert table.lookup(1.0 + 1e-11) == 1.0 + 0j

    def test_distinct_values_kept_apart(self):
        table = ComplexTable(1e-10)
        a = table.lookup(0.3)
        b = table.lookup(0.3 + 1e-6)
        assert a != b

    def test_hit_miss_counters(self):
        table = ComplexTable()
        misses = table.misses
        table.lookup(0.123 + 0.456j)
        assert table.misses == misses + 1
        hits = table.hits
        table.lookup(0.123 + 0.456j)
        assert table.hits == hits + 1

    def test_len_tracks_stored_values(self):
        table = ComplexTable()
        before = len(table)
        table.lookup(0.777)
        assert len(table) == before + 1

    def test_clear_reseeds(self):
        table = ComplexTable()
        table.lookup(0.777)
        table.clear()
        assert table.lookup(1 + 0j) == 1 + 0j
        assert len(table) == 5

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ComplexTable(0.0)
        with pytest.raises(ValueError):
            ComplexTable(-1e-9)

    def test_larger_tolerance_merges_more(self):
        coarse = ComplexTable(1e-2)
        a = coarse.lookup(0.500)
        b = coarse.lookup(0.505)
        assert a is b


class TestLookupProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.complex_numbers(
            max_magnitude=2.0, allow_nan=False, allow_infinity=False
        )
    )
    def test_lookup_is_idempotent(self, value):
        table = ComplexTable()
        first = table.lookup(value)
        assert table.lookup(first) is first

    @settings(max_examples=200, deadline=None)
    @given(
        st.complex_numbers(
            min_magnitude=0.5,
            max_magnitude=2.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        st.floats(-1.0, 1.0),
        st.floats(-1.0, 1.0),
    )
    def test_perturbed_canonical_merges(self, value, dx, dy):
        """Perturbing a stored canonical below tolerance maps back to it.

        (The guarantee is relative to the *stored* value: tolerance-based
        interning is not transitive, so perturbing the original input can
        legitimately land on a new canonical — same as in QCEC.)
        """
        tol = 1e-10
        table = ComplexTable(tol)
        canonical = table.lookup(value)
        perturbed = canonical + complex(dx, dy) * (tol / 4)
        assert table.lookup(perturbed) == canonical
