"""Tests for DD node/edge primitives (`repro.dd.node`)."""

from repro.dd.node import MEdge, MNode, TERMINAL, VEdge, VNode


class TestEdges:
    def test_vector_edge_equality(self):
        node = VNode(0, (VEdge(TERMINAL, 1 + 0j), VEdge(TERMINAL, 0j)))
        assert VEdge(node, 0.5 + 0j) == VEdge(node, 0.5 + 0j)
        assert VEdge(node, 0.5 + 0j) != VEdge(node, 0.25 + 0j)
        assert VEdge(TERMINAL, 0.5 + 0j) != VEdge(node, 0.5 + 0j)

    def test_matrix_edge_equality(self):
        zero = MEdge(TERMINAL, 0j)
        one = MEdge(TERMINAL, 1 + 0j)
        node = MNode(0, (one, zero, zero, one))
        assert MEdge(node, 1j) == MEdge(node, 1j)
        assert MEdge(node, 1j) != MEdge(node, -1j)

    def test_edges_hashable(self):
        edges = {MEdge(TERMINAL, 1 + 0j), MEdge(TERMINAL, 1 + 0j)}
        assert len(edges) == 1

    def test_zero_predicates(self):
        assert MEdge(TERMINAL, 0j).is_zero
        assert not MEdge(TERMINAL, 1e-30 + 0j).is_zero  # exact zero only
        assert VEdge(TERMINAL, 0j).is_zero

    def test_terminal_predicates(self):
        assert MEdge(TERMINAL, 1 + 0j).is_terminal
        node = MNode(0, (MEdge(TERMINAL, 1 + 0j),) * 4)
        assert not MEdge(node, 1 + 0j).is_terminal

    def test_terminal_level(self):
        assert TERMINAL.level == -1

    def test_cross_type_equality_is_false(self):
        assert MEdge(TERMINAL, 1 + 0j) != VEdge(TERMINAL, 1 + 0j)
