"""Cross-engine agreement sweep: array vs object DD kernels.

The array engine must be *bit-identical* to the object engine, not just
numerically close: built over one shared complex table, both engines'
circuit DDs must have equal canonical signatures on every fuzz family,
and every checker strategy must return the same verdict whichever engine
``Configuration.array_dd`` selects.  This mirrors the incremental-ZX
agreement sweep (`tests/zx/test_incremental.py`) for the DD substrate.
"""

import math
import random

import pytest

from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.circuit.symbolic import (
    circuit_parameters,
    instantiate_circuit,
    is_symbolic_circuit,
)
from repro.dd import (
    ArrayDDPackage,
    ComplexTable,
    DDPackage,
    matrix_signature,
    vector_signature,
)
from repro.dd.gates import circuit_dd, simulate_circuit_dd
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.permutations import to_logical_form
from repro.fuzz.generator import FAMILIES, random_family_circuit

#: Checker strategies exercised for verdict agreement (Table 1 columns
#: that run on the DD substrate, plus the combined flow).
_STRATEGIES = ("construction", "alternating", "simulation", "combined")


def _family_circuit(family, seed, num_qubits=4, num_gates=24):
    rng = random.Random(seed)
    circuit = random_family_circuit(
        family, rng, num_qubits=num_qubits, num_gates=num_gates
    )
    if is_symbolic_circuit(circuit):
        # DDs build dense gate matrices, so the parameterized family is
        # swept at a seeded concrete valuation.
        valuation = {
            name: rng.uniform(-math.pi, math.pi)
            for name in circuit_parameters(circuit)
        }
        circuit = instantiate_circuit(circuit, valuation)
    return circuit


def _variant(circuit, kind, seed):
    if kind == "equivalent":
        return circuit.copy()
    if kind == "gate_missing":
        return remove_random_gate(circuit, seed=seed)
    if kind == "flipped_cnot":
        return flip_random_cnot(circuit, seed=seed)
    raise ValueError(kind)


class TestBitIdenticalRoots:
    """Shared-table signatures equal on every fuzz family."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_matrix_roots_identical(self, family, seed):
        circuit = _family_circuit(family, seed)
        n = circuit.num_qubits
        logical, _ = to_logical_form(circuit, n)
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        obj_root = circuit_dd(obj, logical)
        arr_root = circuit_dd(arr, logical)
        assert matrix_signature(obj_root) == matrix_signature(arr_root, arr)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_vector_roots_identical(self, family, seed):
        circuit = _family_circuit(family, seed)
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        obj_state = simulate_circuit_dd(obj, circuit)
        arr_state = simulate_circuit_dd(arr, circuit)
        assert vector_signature(obj_state) == vector_signature(
            arr_state, arr
        )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_legacy_kernel_path_identical_too(self, family):
        """The full-height multiply path agrees across engines as well."""
        circuit = _family_circuit(family, 7, num_gates=12)
        n = circuit.num_qubits
        logical, _ = to_logical_form(circuit, n)
        table = ComplexTable()
        obj = DDPackage(complex_table=table)
        arr = ArrayDDPackage(complex_table=table)
        obj_root = circuit_dd(obj, logical, direct=False)
        arr_root = circuit_dd(arr, logical, direct=False)
        assert matrix_signature(obj_root) == matrix_signature(arr_root, arr)


class TestVerdictAgreement:
    """Same verdict from both engines on every strategy and variant."""

    @pytest.mark.parametrize("strategy", _STRATEGIES)
    @pytest.mark.parametrize(
        "kind", ("equivalent", "gate_missing", "flipped_cnot")
    )
    def test_strategy_verdicts_agree(self, strategy, kind):
        # The trailing CNOT guarantees flip_random_cnot has a target.
        circuit = _family_circuit("clifford_t", 11).cx(0, 1)
        other = _variant(circuit, kind, 11)
        verdicts = []
        for array_dd in (False, True):
            config = Configuration(
                strategy=strategy, seed=5, num_simulations=8,
                array_dd=array_dd,
            )
            result = EquivalenceCheckingManager(
                circuit, other, config
            ).run()
            verdicts.append(result.equivalence)
        assert verdicts[0] is verdicts[1]

    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_verdicts_agree(self, family):
        circuit = _family_circuit(family, 13)
        broken = remove_random_gate(circuit, seed=13)
        for other in (circuit.copy(), broken):
            verdicts = []
            for array_dd in (False, True):
                config = Configuration(
                    strategy="alternating", seed=3, array_dd=array_dd
                )
                result = EquivalenceCheckingManager(
                    circuit, other, config
                ).run()
                verdicts.append(result.equivalence)
            assert verdicts[0] is verdicts[1]

    def test_simulation_digest_identical_across_engines(self):
        """Batched and per-stimulus loops consume the very same stimuli."""
        circuit = _family_circuit("clifford_t", 17)
        digests = []
        for array_dd in (False, True):
            config = Configuration(
                strategy="simulation", seed=9, num_simulations=6,
                array_dd=array_dd,
            )
            result = EquivalenceCheckingManager(
                circuit, circuit.copy(), config
            ).run()
            digests.append(result.statistics["stimuli_digest"])
        assert digests[0] == digests[1]
