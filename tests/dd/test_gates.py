"""Unit tests for gate-DD construction (`repro.dd.gates`)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary
from repro.circuit.gate import Operation
from repro.circuit.unitary import operation_unitary, permutation_matrix
from repro.dd import DDPackage, edge_to_matrix
from repro.dd.gates import (
    apply_operation_left,
    apply_operation_right,
    circuit_dd,
    operation_dd,
    permutation_dd,
    permutation_to_transpositions,
)
from tests.conftest import random_circuit


@pytest.fixture
def pkg():
    return DDPackage()


OPERATIONS = [
    Operation("h", (0,)),
    Operation("h", (2,)),
    Operation("t", (1,)),
    Operation("rz", (1,), params=(0.7,)),
    Operation("u3", (0,), params=(0.3, 0.8, 1.7)),
    Operation("x", (2,), (0,)),
    Operation("x", (0,), (2,)),
    Operation("z", (1,), (2,)),
    Operation("x", (1,), (0, 2)),
    Operation("swap", (0, 2)),
    Operation("swap", (2, 0)),
    Operation("swap", (0, 1), (2,)),
    Operation("rzz", (0, 2), params=(0.9,)),
    Operation("iswap", (1, 2)),
    Operation("rx", (1,), (0,), (1.2,)),
]


class TestOperationDD:
    @pytest.mark.parametrize("op", OPERATIONS, ids=str)
    def test_matches_dense(self, op, pkg):
        edge = operation_dd(pkg, op, 3)
        np.testing.assert_allclose(
            edge_to_matrix(edge, 3), operation_unitary(op, 3), atol=1e-10
        )

    def test_many_controls(self, pkg):
        op = Operation("x", (0,), (1, 2, 3, 4))
        np.testing.assert_allclose(
            edge_to_matrix(operation_dd(pkg, op, 5), 5),
            operation_unitary(op, 5),
            atol=1e-10,
        )

    def test_left_right_application(self, pkg):
        h = Operation("h", (0,))
        x = Operation("x", (0,))
        left = apply_operation_left(
            pkg, operation_dd(pkg, x, 1), h, 1
        )  # H @ X
        right = apply_operation_right(
            pkg, operation_dd(pkg, x, 1), h, 1
        )  # X @ H
        hx = operation_unitary(h, 1) @ operation_unitary(x, 1)
        xh = operation_unitary(x, 1) @ operation_unitary(h, 1)
        np.testing.assert_allclose(edge_to_matrix(left, 1), hx, atol=1e-12)
        np.testing.assert_allclose(edge_to_matrix(right, 1), xh, atol=1e-12)


class TestCircuitDD:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense(self, seed, pkg):
        circuit = random_circuit(4, 25, seed=seed)
        np.testing.assert_allclose(
            edge_to_matrix(circuit_dd(pkg, circuit), 4),
            circuit_unitary(circuit),
            atol=1e-8,
        )

    def test_ghz_dd_is_compact(self, pkg):
        """Paper Fig. 3a: the GHZ unitary has a compact DD."""
        from repro.dd import matrix_dd_size

        ghz = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 2)
        size = matrix_dd_size(circuit_dd(pkg, ghz))
        assert size < 8  # far below the 4^3 dense entries


class TestPermutations:
    def test_transpositions_compose_to_permutation(self):
        perm = {0: 2, 2: 4, 4: 0, 1: 3, 3: 1}
        transpositions = permutation_to_transpositions(perm, 5)
        current = list(range(5))
        for a, b in transpositions:
            current[a], current[b] = current[b], current[a]
        # content that started on wire w must end on wire perm[w]
        for wire in range(5):
            assert current[perm[wire]] == wire

    def test_identity_permutation_empty(self):
        assert permutation_to_transpositions({}, 4) == []

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            permutation_to_transpositions({0: 1, 1: 1}, 2)

    @pytest.mark.parametrize(
        "perm", [{0: 1, 1: 0}, {0: 1, 1: 2, 2: 0}, {0: 2, 2: 0}]
    )
    def test_permutation_dd_matches_dense(self, perm, pkg):
        edge = permutation_dd(pkg, perm, 3)
        np.testing.assert_allclose(
            edge_to_matrix(edge, 3), permutation_matrix(perm, 3), atol=1e-12
        )
