"""Tests for DD export utilities (`repro.dd.export`)."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.circuit import ghz_example
from repro.dd import DDPackage, edge_to_matrix, edge_to_vector, matrix_dd_size
from repro.dd.export import matrix_dd_to_dot
from repro.dd.gates import circuit_dd, simulate_circuit_dd


@pytest.fixture
def pkg():
    return DDPackage()


class TestDenseExport:
    def test_zero_edges(self, pkg):
        np.testing.assert_allclose(
            edge_to_matrix(pkg.zero_matrix_edge(), 2), np.zeros((4, 4))
        )
        np.testing.assert_allclose(
            edge_to_vector(pkg.zero_vector_edge(), 2), np.zeros(4)
        )

    def test_terminal_scalar(self, pkg):
        matrix = edge_to_matrix(pkg.terminal_matrix_edge(2.5 + 0j), 0)
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == pytest.approx(2.5)

    def test_sizes_of_zero(self, pkg):
        assert matrix_dd_size(pkg.zero_matrix_edge()) == 0


class TestDotExport:
    def test_ghz_dot_structure(self, pkg):
        dot = matrix_dd_to_dot(circuit_dd(pkg, ghz_example()), name="ghz")
        assert dot.startswith("digraph ghz {")
        assert dot.rstrip().endswith("}")
        assert "terminal" in dot
        assert 'label="q2"' in dot  # root level for a 3-qubit diagram

    def test_node_count_matches_size(self, pkg):
        edge = circuit_dd(pkg, ghz_example())
        dot = matrix_dd_to_dot(edge)
        declared_nodes = dot.count("shape=circle")
        assert declared_nodes == matrix_dd_size(edge)

    def test_zero_edge_dot(self, pkg):
        dot = matrix_dd_to_dot(pkg.zero_matrix_edge())
        assert "root ->" not in dot

    def test_weights_in_labels(self, pkg):
        circuit = QuantumCircuit(1).h(0)
        dot = matrix_dd_to_dot(circuit_dd(pkg, circuit))
        assert "0.7071" in dot


class TestZXDotExport:
    def test_zx_dot_structure(self):
        from repro.zx import circuit_to_zx
        from repro.zx.diagram import diagram_to_dot

        diagram = circuit_to_zx(ghz_example())
        dot = diagram_to_dot(diagram, name="ghz")
        assert dot.startswith("graph ghz {")
        assert dot.count("fillcolor=green") == 2  # CX control spiders
        assert dot.count("fillcolor=red") == 2  # CX target spiders
        assert 'label="in"' in dot and 'label="out"' in dot

    def test_hadamard_edges_dashed(self):
        from repro.zx import circuit_to_zx
        from repro.zx.diagram import diagram_to_dot

        diagram = circuit_to_zx(QuantumCircuit(2).cz(0, 1))
        dot = diagram_to_dot(diagram)
        assert "style=dashed" in dot

    def test_phase_labels(self):
        from repro.zx import circuit_to_zx
        from repro.zx.diagram import diagram_to_dot

        diagram = circuit_to_zx(QuantumCircuit(1).t(0))
        assert "1/4π" in diagram_to_dot(diagram)
