"""Unit tests for the slot-indexed compute tables and cache eviction.

The key property under test: *eviction never changes results*.  A bounded
compute table may drop memoized entries at any time, which costs a
recomputation but must yield the very same canonical nodes — the
randomized stress test at the bottom checks multiply/add results across
table sizes 64, 4096 and unbounded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd.compute_table import ComputeTable, DEFAULT_COMPUTE_TABLE_SIZE
from repro.dd.export import edge_to_matrix, matrix_dd_size
from repro.dd.gates import circuit_dd
from repro.dd.package import DDPackage

from tests.conftest import random_circuit


class TestComputeTable:
    def test_basic_get_put(self):
        table = ComputeTable("t", 16)
        assert table.get((1, 2)) is None
        table.put((1, 2), "value")
        assert table.get((1, 2)) == "value"
        assert table.hits == 1
        assert table.misses == 1
        assert len(table) == 1

    def test_collision_overwrites_single_slot(self):
        table = ComputeTable("t", 1)
        table.put((1,), "a")
        table.put((2,), "b")  # same slot, different key
        assert table.evictions == 1
        assert len(table) == 1
        assert table.get((1,)) is None
        assert table.get((2,)) == "b"

    def test_same_key_overwrite_is_not_an_eviction(self):
        table = ComputeTable("t", 4)
        table.put((1,), "a")
        table.put((1,), "b")
        assert table.evictions == 0
        assert table.get((1,)) == "b"

    def test_size_rounds_up_to_power_of_two(self):
        assert ComputeTable("t", 100).size == 128
        assert ComputeTable("t", 1).size == 1
        assert ComputeTable("t", 4096).size == 4096

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ComputeTable("t", 0)
        with pytest.raises(ValueError):
            ComputeTable("t", -5)

    def test_unbounded_mode(self):
        table = ComputeTable("t", None)
        assert not table.bounded
        assert table.size is None
        for i in range(1000):
            table.put((i,), i)
        assert len(table) == 1000
        assert all(table.get((i,)) == i for i in range(1000))
        assert table.evictions == 0

    def test_clear_resets_entries_and_stats(self):
        table = ComputeTable("t", 16)
        table.put((1,), "a")
        table.get((1,))
        table.clear()
        assert len(table) == 0
        assert table.hits == 0 and table.misses == 0 and table.evictions == 0
        assert table.get((1,)) is None

    def test_stats_shape(self):
        table = ComputeTable("t", 8)
        table.put((1,), "a")
        table.get((1,))
        table.get((2,))
        assert table.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "entries": 1,
        }

    def test_default_size_is_power_of_two(self):
        assert DEFAULT_COMPUTE_TABLE_SIZE & (DEFAULT_COMPUTE_TABLE_SIZE - 1) == 0


class TestPackageTableWiring:
    def test_package_honours_table_size(self):
        pkg = DDPackage(compute_table_size=64)
        assert all(t.size == 64 for t in pkg._tables.values())
        unbounded = DDPackage(compute_table_size=None)
        assert all(t.size is None for t in unbounded._tables.values())

    def test_compute_table_stats_keys(self):
        pkg = DDPackage()
        stats = pkg.compute_table_stats()
        assert "mul" in stats and "add" in stats and "apply_left" in stats
        assert set(stats["mul"]) == {"hits", "misses", "evictions", "entries"}

    def test_clear_compute_tables_clears_all(self):
        pkg = DDPackage(compute_table_size=64)
        circuit = random_circuit(3, 15, seed=2)
        circuit_dd(pkg, circuit)
        assert any(len(t) for t in pkg._tables.values())
        pkg.clear_compute_tables()
        assert all(len(t) == 0 for t in pkg._tables.values())


class TestEvictionStress:
    """Randomized stress: results are identical under any table size."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("gate_set", ["clifford_t", "rotations", "mixed"])
    def test_eviction_invariance(self, seed, gate_set):
        circuits = [
            random_circuit(5, 25, seed=10 * seed + offset, gate_set=gate_set)
            for offset in range(2)
        ]
        references = None
        for table_size in (64, 4096, None):
            pkg = DDPackage(compute_table_size=table_size)
            # Interleave construction, multiplication and addition so the
            # tiny tables actually evict mid-recursion.
            a = circuit_dd(pkg, circuits[0])
            b = circuit_dd(pkg, circuits[1])
            product = pkg.multiply(a, b)
            total = pkg.add(a, b)
            dense = [
                edge_to_matrix(edge, 5) for edge in (a, b, product, total)
            ]
            for edge in (a, b, product, total):
                assert matrix_dd_size(edge) > 1
            if references is None:
                references = dense
                if table_size == 64:
                    # The tiny table must actually have evicted, otherwise
                    # this stress test exercises nothing.
                    assert any(
                        t.evictions for t in pkg._tables.values()
                    ), "expected evictions with 64-slot tables"
            else:
                # Eviction may only cost recomputation — numerically the
                # results are indistinguishable.  (Exact node counts can
                # drift by ±1 across *packages* because recomputation
                # order changes which weight becomes the tolerance
                # bucket's canonical representative.)
                for got, expected in zip(dense, references):
                    np.testing.assert_allclose(got, expected, atol=1e-12)

    @pytest.mark.parametrize("table_size", [64, 4096, None])
    def test_checker_verdicts_invariant_under_table_size(self, table_size):
        from repro.bench.algorithms import ghz_state
        from repro.compile import compile_circuit, line_architecture
        from repro.ec import Configuration, EquivalenceCheckingManager
        from repro.ec.results import Equivalence

        original = ghz_state(6)
        compiled = compile_circuit(original, line_architecture(8))
        config = Configuration(
            strategy="alternating", seed=0, compute_table_size=table_size
        )
        result = EquivalenceCheckingManager(original, compiled, config).run()
        assert result.equivalence in (
            Equivalence.EQUIVALENT,
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        )

    def test_same_package_canonicity_under_eviction(self):
        """Recomputing after eviction returns the *same* canonical node."""
        pkg = DDPackage(compute_table_size=64)
        circuit = random_circuit(4, 30, seed=7)
        first = circuit_dd(pkg, circuit)
        pkg.clear_compute_tables()  # worst case: every memo gone
        second = circuit_dd(pkg, circuit)
        assert first.node is second.node
        assert first.weight == second.weight
