"""Tests for the direct gate-application fast path.

The contract is strict bit-identity: within one package, the direct
kernels must return the very same canonical node (and weight) as the
legacy full-height gate-DD construction plus full-depth multiplication,
for matrix products from either side and for matrix-vector products.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.circuit.unitary import (
    circuit_unitary,
    permutation_matrix,
    statevector,
)
from repro.dd import DDPackage, edge_to_matrix, edge_to_vector
from repro.dd.gates import (
    apply_operation_left,
    apply_operation_right,
    apply_operation_to_vector,
    circuit_dd,
    compact_operation_dd,
    permutation_dd,
    simulate_circuit_dd,
    swap_dd,
)
from tests.conftest import random_circuit


@pytest.fixture
def pkg():
    return DDPackage()


class TestCompactOperationDD:
    def test_root_level_is_top_touched_qubit(self, pkg):
        edge = compact_operation_dd(pkg, Operation("x", (2,), (0,)))
        assert edge.node.level == 2
        edge = compact_operation_dd(pkg, Operation("h", (1,)))
        assert edge.node.level == 1

    def test_matches_full_dd_on_its_own_register(self, pkg):
        op = Operation("x", (1,), (0,))
        compact = compact_operation_dd(pkg, op)
        c = QuantumCircuit(2)
        c.cx(0, 1)
        np.testing.assert_allclose(
            edge_to_matrix(compact, 2), circuit_unitary(c), atol=1e-12
        )


class TestDirectVsLegacy:
    """Direct and legacy paths agree node-for-node in the same package."""

    @pytest.mark.parametrize("gate_set", ["clifford_t", "rotations", "mixed"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matrix_accumulation_left(self, gate_set, seed, pkg):
        circuit = random_circuit(5, 25, seed=seed, gate_set=gate_set)
        direct = circuit_dd(pkg, circuit, direct=True)
        legacy = circuit_dd(pkg, circuit, direct=False)
        assert direct.node is legacy.node
        assert direct.weight == legacy.weight
        np.testing.assert_allclose(
            edge_to_matrix(direct, 5), circuit_unitary(circuit), atol=1e-9
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matrix_accumulation_right(self, seed, pkg):
        accumulated_direct = pkg.identity(4)
        accumulated_legacy = pkg.identity(4)
        for op in random_circuit(4, 20, seed=seed):
            accumulated_direct = apply_operation_right(
                pkg, accumulated_direct, op, 4, direct=True
            )
            accumulated_legacy = apply_operation_right(
                pkg, accumulated_legacy, op, 4, direct=False
            )
            assert accumulated_direct.node is accumulated_legacy.node
            assert accumulated_direct.weight == accumulated_legacy.weight

    @pytest.mark.parametrize("gate_set", ["clifford_t", "mixed"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vector_simulation(self, gate_set, seed, pkg):
        circuit = random_circuit(5, 25, seed=seed, gate_set=gate_set)
        direct = simulate_circuit_dd(pkg, circuit, direct=True)
        legacy = simulate_circuit_dd(pkg, circuit, direct=False)
        assert direct.node is legacy.node
        assert direct.weight == legacy.weight
        np.testing.assert_allclose(
            edge_to_vector(direct, 5), statevector(circuit), atol=1e-9
        )

    def test_wide_register_narrow_gate(self, pkg):
        """A gate on low qubits of a wide register passes upper levels through."""
        num_qubits = 12
        accumulated = pkg.identity(num_qubits)
        op = Operation("x", (1,), (0,))
        direct = apply_operation_left(pkg, accumulated, op, num_qubits, direct=True)
        legacy = apply_operation_left(pkg, accumulated, op, num_qubits, direct=False)
        assert direct.node is legacy.node
        assert direct.weight == legacy.weight
        # The pass-through never created nodes above the accumulated height.
        assert direct.node.level == num_qubits - 1

    def test_zero_target_short_circuits(self, pkg):
        zero = pkg.zero_matrix_edge()
        gate = compact_operation_dd(pkg, Operation("h", (0,)))
        assert pkg.apply_gate_left(gate, zero).is_zero
        assert pkg.apply_gate_right(zero, gate).is_zero
        assert pkg.apply_gate_vector(gate, pkg.zero_vector_edge()).is_zero


class TestSwapDD:
    @pytest.mark.parametrize("num_qubits", [2, 3, 5])
    def test_swap_dd_matches_dense(self, num_qubits, pkg):
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit = QuantumCircuit(num_qubits)
                circuit.swap(a, b)
                np.testing.assert_allclose(
                    edge_to_matrix(swap_dd(pkg, a, b, num_qubits), num_qubits),
                    circuit_unitary(circuit),
                    atol=1e-12,
                )

    def test_swap_dd_is_argument_order_invariant(self, pkg):
        assert swap_dd(pkg, 0, 2, 3).node is swap_dd(pkg, 2, 0, 3).node

    def test_swap_dd_rejects_bad_arguments(self, pkg):
        with pytest.raises(ValueError):
            swap_dd(pkg, 1, 1, 3)
        with pytest.raises(ValueError):
            swap_dd(pkg, 0, 3, 3)

    def test_operation_dd_special_cases_swap(self, pkg):
        from repro.dd.gates import operation_dd

        edge = operation_dd(pkg, Operation("swap", (0, 2)), 4)
        assert edge.node is swap_dd(pkg, 0, 2, 4).node

    def test_controlled_swap_uses_generic_path(self, pkg):
        """A Fredkin gate must not hit the uncontrolled special case."""
        from repro.dd.gates import operation_dd

        fredkin = Operation("swap", (0, 1), (2,))
        circuit = QuantumCircuit(3, operations=[fredkin])
        np.testing.assert_allclose(
            edge_to_matrix(operation_dd(pkg, fredkin, 3), 3),
            circuit_unitary(circuit),
            atol=1e-12,
        )


class TestPermutationDD:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6])
    def test_random_permutations_match_dense(self, num_qubits, pkg):
        rng = random.Random(num_qubits)
        for _ in range(4):
            wires = list(range(num_qubits))
            rng.shuffle(wires)
            perm = {i: wires[i] for i in range(num_qubits)}
            np.testing.assert_allclose(
                edge_to_matrix(permutation_dd(pkg, perm, num_qubits), num_qubits),
                permutation_matrix(perm, num_qubits),
                atol=1e-12,
            )

    def test_identity_permutation(self, pkg):
        edge = permutation_dd(pkg, {}, 4)
        assert edge.node is pkg.identity(4).node

    def test_partial_permutation_on_wide_register(self, pkg):
        """Low-wire cycles on a wide register match the dense reference."""
        num_qubits = 8
        perm = {0: 2, 2: 1, 1: 0}
        np.testing.assert_allclose(
            edge_to_matrix(permutation_dd(pkg, perm, num_qubits), num_qubits),
            permutation_matrix(perm, num_qubits),
            atol=1e-12,
        )


class TestApplyOperationToVector:
    def test_vector_kernel_matches_dense_on_stimuli(self, pkg):
        from repro.ec.stimuli import generate_stimulus, prepare_stimulus_state

        rng = random.Random(3)
        for kind in ("classical", "local_quantum", "global_quantum"):
            stimulus = generate_stimulus(kind, 5, 4, rng)
            state = prepare_stimulus_state(pkg, stimulus, 5)
            np.testing.assert_allclose(
                edge_to_vector(state, 5), statevector(stimulus), atol=1e-9
            )

    def test_direct_flag_false_matches(self, pkg):
        circuit = random_circuit(4, 15, seed=11)
        state_direct = pkg.basis_state(4)
        state_legacy = pkg.basis_state(4)
        for op in circuit:
            state_direct = apply_operation_to_vector(
                pkg, state_direct, op, 4, direct=True
            )
            state_legacy = apply_operation_to_vector(
                pkg, state_legacy, op, 4, direct=False
            )
        assert state_direct.node is state_legacy.node
        assert state_direct.weight == state_legacy.weight
