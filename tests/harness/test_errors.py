"""Taxonomy classification, serialization and retry/backoff behaviour."""

import pytest

from repro.ec.results import EquivalenceCheckingTimeout
from repro.errors import (
    CheckCrashed,
    CheckError,
    CheckOutOfMemory,
    CheckTimeout,
    CheckWorkerLost,
    InvalidInput,
    RetryPolicy,
    call_with_retry,
    classify_exception,
    error_from_dict,
)


class TestTaxonomy:
    def test_kinds_are_distinct_and_stable(self):
        kinds = {
            cls.kind
            for cls in (
                CheckError,
                CheckTimeout,
                CheckOutOfMemory,
                CheckCrashed,
                CheckWorkerLost,
                InvalidInput,
            )
        }
        assert len(kinds) == 6

    def test_transient_classification(self):
        assert CheckCrashed("x").transient
        assert CheckWorkerLost("x").transient
        assert not CheckTimeout("x").transient
        assert not CheckOutOfMemory("x").transient
        assert not InvalidInput("x").transient

    def test_round_trip_through_dict(self):
        error = CheckCrashed("worker died", signal=11, pid=1234)
        restored = error_from_dict(error.to_dict())
        assert isinstance(restored, CheckCrashed)
        assert restored.kind == "crashed"
        assert restored.transient
        assert restored.diagnostics == {"signal": 11, "pid": 1234}

    def test_worker_lost_round_trips_to_subclass(self):
        restored = error_from_dict(CheckWorkerLost("gone").to_dict())
        assert isinstance(restored, CheckWorkerLost)

    def test_unknown_kind_degrades_to_base(self):
        restored = error_from_dict({"kind": "martian", "message": "?"})
        assert type(restored) is CheckError

    def test_str_includes_diagnostics(self):
        text = str(CheckTimeout("too slow", budget_seconds=3.0))
        assert "too slow" in text and "budget_seconds" in text


class TestClassify:
    def test_memory_error(self):
        assert isinstance(classify_exception(MemoryError()), CheckOutOfMemory)

    def test_cooperative_timeout(self):
        error = classify_exception(EquivalenceCheckingTimeout())
        assert isinstance(error, CheckTimeout)
        assert error.diagnostics["hard"] is False

    def test_value_error_is_invalid_input(self):
        assert isinstance(classify_exception(ValueError("bad")), InvalidInput)

    def test_unexpected_exception_is_crash(self):
        error = classify_exception(RuntimeError("boom"))
        assert isinstance(error, CheckCrashed)
        assert error.transient

    def test_check_error_passes_through(self):
        original = CheckOutOfMemory("oom")
        assert classify_exception(original) is original


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(
            max_retries=10, backoff_base=0.5, backoff_factor=2.0,
            backoff_max=3.0,
        )
        delays = [policy.delay(i) for i in range(5)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1).validate()
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1).validate()
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5).validate()
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1).validate()
        with pytest.raises(ValueError):
            RetryPolicy(jitter_seed=1.5).validate()  # type: ignore[arg-type]

    def test_zero_jitter_reproduces_pure_exponential(self):
        plain = RetryPolicy(backoff_base=0.5, backoff_max=3.0)
        explicit = RetryPolicy(backoff_base=0.5, backoff_max=3.0, jitter=0.0)
        assert [plain.delay(i) for i in range(5)] == [
            explicit.delay(i) for i in range(5)
        ]

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5, jitter_seed=42)
        twin = RetryPolicy(backoff_base=1.0, jitter=0.5, jitter_seed=42)
        schedule = [policy.delay(i) for i in range(8)]
        # Same seed, same attempt -> bit-identical delay, every time.
        assert schedule == [twin.delay(i) for i in range(8)]
        assert schedule == [policy.delay(i) for i in range(8)]
        other = RetryPolicy(backoff_base=1.0, jitter=0.5, jitter_seed=43)
        assert schedule != [other.delay(i) for i in range(8)]

    def test_jitter_only_shrinks_delay_within_bounds(self):
        policy = RetryPolicy(
            backoff_base=0.5, backoff_max=3.0, jitter=0.5, jitter_seed=7
        )
        plain = RetryPolicy(backoff_base=0.5, backoff_max=3.0)
        for attempt in range(8):
            base = plain.delay(attempt)
            delay = policy.delay(attempt)
            # jitter subtracts at most a `jitter` share and never adds.
            assert base * (1.0 - policy.jitter) <= delay <= base

    def test_transient_failure_retried_then_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise CheckCrashed("flaky")
            return "done"

        policy = RetryPolicy(max_retries=3, backoff_base=0.25)
        assert call_with_retry(flaky, policy, sleep=sleeps.append) == "done"
        assert len(calls) == 3
        assert sleeps == [0.25, 0.5]

    def test_permanent_failure_not_retried(self):
        calls = []

        def oom():
            calls.append(1)
            raise CheckOutOfMemory("big")

        with pytest.raises(CheckOutOfMemory) as info:
            call_with_retry(oom, RetryPolicy(max_retries=5), sleep=lambda s: None)
        assert len(calls) == 1
        assert info.value.diagnostics["attempts"] == 1

    def test_retries_exhausted_reports_attempts(self):
        def always_crash():
            raise CheckCrashed("again")

        with pytest.raises(CheckCrashed) as info:
            call_with_retry(
                always_crash, RetryPolicy(max_retries=2), sleep=lambda s: None
            )
        assert info.value.diagnostics["attempts"] == 3

    def test_no_retry_default(self):
        calls = []

        def crash():
            calls.append(1)
            raise CheckCrashed("x")

        with pytest.raises(CheckCrashed):
            call_with_retry(crash, sleep=lambda s: None)
        assert len(calls) == 1
