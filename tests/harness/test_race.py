"""Multi-child racing (:mod:`repro.harness.race`): winner selection,
loser kills, chaos containment, budgets, and zombie-free bookkeeping."""

import multiprocessing
import os

import pytest

from repro.bench.algorithms import ghz_state
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.errors import InvalidInput, PortfolioDisagreement
from repro.harness.chaos import ChaosSpec
from repro.harness.race import (
    KILL_BUDGET,
    KILL_DEADLINE,
    KILL_LOSER,
    ChildOutcome,
    RaceEntry,
    check_sound_consistency,
    race_checks,
)

@pytest.fixture(scope="module")
def tiny_pair():
    original = ghz_state(6)
    compiled = compile_circuit(original, line_architecture(7))
    return original, compiled


def _config(strategy="alternating", timeout=30.0, **overrides):
    return Configuration(strategy=strategy, seed=0, timeout=timeout,
                         **overrides)


def _entry(name, strategy=None, **overrides):
    return RaceEntry(
        name=name,
        configuration=_config(strategy or name),
        **overrides,
    )


def assert_no_zombies():
    """The parent holds no unreaped child after a race.

    ``os.waitpid(-1, WNOHANG)`` returns a pid only when a zombie is
    waiting to be reaped; ``(0, 0)`` (live children, none exited) and
    ``ChildProcessError`` (no children at all) are both clean states.
    """
    try:
        pid, _ = os.waitpid(-1, os.WNOHANG)
    except ChildProcessError:
        pid = 0
    assert pid == 0
    assert multiprocessing.active_children() == []


class TestBasicRace:
    def test_sound_winner_kills_no_one_left_running(self, tiny_pair):
        """Alternating proves the pair; simulation's probabilistic verdict
        never decides the race."""
        outcome = race_checks(
            *tiny_pair,
            [_entry("alternating"), _entry("simulation")],
        )
        assert outcome.winner == "alternating"
        result = outcome.winner_result
        assert result is not None and result.proven
        for child in outcome.children:
            assert child.status in ("completed", "killed")
            assert child.reaped
            assert child.pid is not None
        assert_no_zombies()

    def test_simulation_falsifier_wins_on_non_equivalent_pair(self, tiny_pair):
        """NOT_EQUIVALENT from random stimuli is sound and ends the race."""
        from repro.bench.errors import flip_random_cnot

        original, compiled = tiny_pair
        broken = flip_random_cnot(compiled, seed=1)
        outcome = race_checks(
            original, broken, [_entry("simulation"), _entry("alternating")]
        )
        assert outcome.winner is not None
        assert (
            outcome.winner_result.equivalence is Equivalence.NOT_EQUIVALENT
        )
        assert_no_zombies()

    def test_pending_lane_skipped_when_race_decided_first(self, tiny_pair):
        outcome = race_checks(
            *tiny_pair,
            [_entry("alternating"), _entry("construction", delay=120.0)],
        )
        assert outcome.winner == "alternating"
        late = outcome.outcome("construction")
        assert late.status == "skipped"
        assert late.pid is None
        assert late.kill_code is None
        assert_no_zombies()


@pytest.mark.chaos
class TestChaosContainment:
    def test_hanging_loser_does_not_delay_the_winner(self, tiny_pair):
        """One lane hangs forever; the sound winner still decides the race
        promptly and the hung child is SIGKILLed as a loser."""
        hung = RaceEntry(
            name="hung",
            configuration=_config("construction"),
            budget=120.0,  # far beyond the winner's runtime
            chaos=ChaosSpec(mode="hang"),
        )
        outcome = race_checks(
            *tiny_pair, [_entry("alternating"), hung]
        )
        assert outcome.winner == "alternating"
        assert outcome.winner_result.proven
        loser = outcome.outcome("hung")
        assert loser.status == "killed"
        assert loser.kill_code == KILL_LOSER
        assert loser.reaped
        # The hang must not have stalled the race: the winner needs well
        # under its 30 s cooperative timeout, let alone the hung lane's
        # 120 s budget.
        assert outcome.elapsed < 20.0
        assert_no_zombies()

    def test_crashing_lane_fails_structured_winner_unaffected(self, tiny_pair):
        crashing = RaceEntry(
            name="crashing",
            configuration=_config("construction"),
            chaos=ChaosSpec(mode="crash"),
        )
        outcome = race_checks(
            *tiny_pair, [_entry("alternating"), crashing]
        )
        assert outcome.winner == "alternating"
        crashed = outcome.outcome("crashing")
        assert crashed.status in ("failed", "killed")
        if crashed.status == "failed":
            assert crashed.error is not None
            assert "kind" in crashed.error
        assert crashed.reaped
        assert_no_zombies()

    def test_per_child_budget_kill(self, tiny_pair):
        hung = RaceEntry(
            name="hung",
            configuration=_config("alternating"),
            budget=0.4,
            chaos=ChaosSpec(mode="hang"),
        )
        outcome = race_checks(*tiny_pair, [hung])
        assert outcome.winner is None
        child = outcome.outcome("hung")
        assert child.status == "killed"
        assert child.kill_code == KILL_BUDGET
        assert child.reaped
        assert not outcome.deadline_expired
        assert_no_zombies()

    def test_shared_deadline_kills_every_running_lane(self, tiny_pair):
        entries = [
            RaceEntry(
                name=name,
                configuration=_config("alternating", timeout=None),
                chaos=ChaosSpec(mode="hang"),
            )
            for name in ("first", "second")
        ]
        outcome = race_checks(*tiny_pair, entries, shared_budget=0.5)
        assert outcome.winner is None
        assert outcome.deadline_expired
        for child in outcome.children:
            assert child.status == "killed"
            assert child.kill_code == KILL_DEADLINE
            assert child.reaped
        assert_no_zombies()


class TestSoundConsistency:
    @staticmethod
    def _completed(name, verdict):
        return ChildOutcome(
            name=name,
            status="completed",
            result=EquivalenceCheckingResult(verdict, name, 0.0),
        )

    def test_contradictory_proofs_raise(self):
        children = [
            self._completed("zx", Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE),
            self._completed("simulation", Equivalence.NOT_EQUIVALENT),
        ]
        with pytest.raises(PortfolioDisagreement) as info:
            check_sound_consistency(children)
        assert info.value.transient is False
        assert info.value.diagnostics["positive"] == "zx"
        assert info.value.diagnostics["negative"] == "simulation"

    def test_probabilistic_evidence_never_contradicts(self):
        """PROBABLY_EQUIVALENT next to a sound NOT_EQUIVALENT is the
        expected simulation asymmetry, not a checker bug."""
        check_sound_consistency([
            self._completed("simulation", Equivalence.PROBABLY_EQUIVALENT),
            self._completed("alternating", Equivalence.NOT_EQUIVALENT),
        ])

    def test_agreeing_proofs_are_fine(self):
        check_sound_consistency([
            self._completed("alternating", Equivalence.EQUIVALENT),
            self._completed("zx", Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE),
        ])


class TestValidation:
    def test_empty_entry_list(self, tiny_pair):
        with pytest.raises(InvalidInput):
            race_checks(*tiny_pair, [])

    def test_duplicate_names(self, tiny_pair):
        with pytest.raises(InvalidInput):
            race_checks(
                *tiny_pair, [_entry("alternating"), _entry("alternating")]
            )

    def test_negative_delay(self, tiny_pair):
        with pytest.raises(InvalidInput):
            race_checks(*tiny_pair, [_entry("alternating", delay=-1.0)])

    def test_non_positive_budget(self, tiny_pair):
        with pytest.raises(InvalidInput):
            race_checks(*tiny_pair, [_entry("alternating", budget=0.0)])

    def test_invalid_child_configuration(self, tiny_pair):
        entry = RaceEntry(
            name="bad", configuration=Configuration(strategy="alternating",
                                                    timeout=-5.0)
        )
        with pytest.raises(InvalidInput):
            race_checks(*tiny_pair, [entry])
