"""JSONL checkpoint journal: durability, resume, mismatch, torn writes."""

import json

import pytest

from repro.harness.journal import Journal, JournalMismatch


META = {"use_case": "compiled", "scale": "small", "timeout": 5.0, "seed": 0}


class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("a:x", {"seconds": 1.0, "verdict": "equivalent"})
            journal.record("a:y", {"seconds": 2.0, "verdict": "timeout"})
        with Journal(path, META, resume=True) as resumed:
            assert len(resumed) == 2
            assert "a:x" in resumed
            assert resumed.get("a:y")["verdict"] == "timeout"
            assert resumed.corrupt_lines == 0

    def test_resume_missing_file_is_empty(self, tmp_path):
        with Journal(tmp_path / "fresh.jsonl", META, resume=True) as journal:
            assert len(journal) == 0

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("a", {"v": 1})
        with Journal(path, META) as journal:
            assert len(journal) == 0
        with Journal(path, META, resume=True) as journal:
            assert len(journal) == 0

    def test_metadata_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Journal(path, META).close()
        other = dict(META, timeout=60.0)
        with pytest.raises(JournalMismatch):
            Journal(path, other, resume=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("done", {"seconds": 1.0})
        # Simulate a kill mid-write: a truncated JSON line at the tail.
        with path.open("a") as handle:
            handle.write('{"key": "half", "payload": {"seco')
        with Journal(path, META, resume=True) as resumed:
            assert "done" in resumed
            assert "half" not in resumed
            assert resumed.corrupt_lines == 1

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("first", {"v": 1})
        with Journal(path, META, resume=True) as journal:
            journal.record("second", {"v": 2})
        with Journal(path, META, resume=True) as resumed:
            assert set(resumed.completed) == {"first", "second"}

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("cell", {"seconds": 0.5, "correct": None})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["journal"] == "repro-journal"
        assert header["metadata"] == META
        record = json.loads(lines[1])
        assert record == {"key": "cell", "payload": {"seconds": 0.5, "correct": None}}
