"""JSONL checkpoint journal: durability, resume, mismatch, torn writes."""

import json

import pytest

from repro.harness.journal import Journal, JournalMismatch


META = {"use_case": "compiled", "scale": "small", "timeout": 5.0, "seed": 0}


class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("a:x", {"seconds": 1.0, "verdict": "equivalent"})
            journal.record("a:y", {"seconds": 2.0, "verdict": "timeout"})
        with Journal(path, META, resume=True) as resumed:
            assert len(resumed) == 2
            assert "a:x" in resumed
            assert resumed.get("a:y")["verdict"] == "timeout"
            assert resumed.corrupt_lines == 0

    def test_resume_missing_file_is_empty(self, tmp_path):
        with Journal(tmp_path / "fresh.jsonl", META, resume=True) as journal:
            assert len(journal) == 0

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("a", {"v": 1})
        with Journal(path, META) as journal:
            assert len(journal) == 0
        with Journal(path, META, resume=True) as journal:
            assert len(journal) == 0

    def test_metadata_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Journal(path, META).close()
        other = dict(META, timeout=60.0)
        with pytest.raises(JournalMismatch):
            Journal(path, other, resume=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("done", {"seconds": 1.0})
        # Simulate a kill mid-write: a truncated JSON line at the tail.
        with path.open("a") as handle:
            handle.write('{"key": "half", "payload": {"seco')
        with Journal(path, META, resume=True) as resumed:
            assert "done" in resumed
            assert "half" not in resumed
            assert resumed.corrupt_lines == 1

    def test_resume_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("first", {"v": 1})
        with Journal(path, META, resume=True) as journal:
            journal.record("second", {"v": 2})
        with Journal(path, META, resume=True) as resumed:
            assert set(resumed.completed) == {"first", "second"}

    def test_truncation_at_every_byte_offset_recovers(self, tmp_path):
        """A crash can tear the tail at *any* byte; replay must survive.

        For every possible truncation point the recovered journal must be
        an intact prefix of the recorded entries (payloads bit-exact), at
        most one line may count as corrupt, and the file must still
        accept appends afterwards.
        """
        path = tmp_path / "run.jsonl"
        entries = {f"cell:{index}": {"v": index} for index in range(4)}
        with Journal(path, META) as journal:
            for key, payload in entries.items():
                journal.record(key, payload)
        blob = path.read_bytes()
        header_length = blob.index(b"\n") + 1
        keys = list(entries)
        for cut in range(len(blob) + 1):
            torn = tmp_path / "torn.jsonl"
            torn.write_bytes(blob[:cut])
            # A cut inside the header loses the metadata line itself, so
            # the metadata equality check cannot apply there.
            metadata = META if cut >= header_length else None
            with Journal(torn, metadata, resume=True) as resumed:
                recovered = list(resumed.completed)
                assert recovered == keys[: len(recovered)], cut
                for key in recovered:
                    assert resumed.get(key) == entries[key]
                assert resumed.corrupt_lines <= 1
                resumed.record("after:crash", {"v": -1})
            with Journal(torn, metadata, resume=True) as reread:
                assert reread.get("after:crash") == {"v": -1}

    def test_compact_rewrites_live_entries_atomically(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("a", {"v": 1})
            journal.record("a", {"v": 2})  # superseded duplicate
            journal.record("b", {"v": 3})
            # Torn tail from a simulated crash, then compact over it.
            journal._handle.write('{"key": "torn", "payl')
            journal._handle.flush()
            assert journal.compact() == 2
            journal.record("c", {"v": 4})  # handle reopened on new file
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["journal"] == "repro-journal"
        assert lines[1:] == [
            {"key": "a", "payload": {"v": 2}},
            {"key": "b", "payload": {"v": 3}},
            {"key": "c", "payload": {"v": 4}},
        ]
        with Journal(path, META, resume=True) as resumed:
            assert resumed.corrupt_lines == 0
            assert len(resumed) == 3

    def test_fsync_directory_tolerates_missing_path(self, tmp_path):
        from repro.harness.journal import fsync_directory

        fsync_directory(tmp_path)  # real directory: must not raise
        fsync_directory(tmp_path / "does-not-exist")  # degrade, not crash

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, META) as journal:
            journal.record("cell", {"seconds": 0.5, "correct": None})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["journal"] == "repro-journal"
        assert header["metadata"] == META
        record = json.loads(lines[1])
        assert record == {"key": "cell", "payload": {"seconds": 0.5, "correct": None}}
