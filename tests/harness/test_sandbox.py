"""Sandboxed execution: agreement with in-process runs and containment.

The ``chaos``-marked tests inject deterministic faults — a
non-cooperative hard hang, a memory balloon, a hard crash — into the
checker path of a sandboxed child and assert the parent receives a
*structured* failure of the right taxonomy class, proving the isolation
layer actually contains what cooperative deadlines cannot.
"""

import time

import pytest

from repro.bench.algorithms import ghz_state, qft
from repro.bench.errors import remove_random_gate
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence
from repro.errors import (
    CheckCrashed,
    CheckOutOfMemory,
    CheckTimeout,
    CheckWorkerLost,
    InvalidInput,
    RetryPolicy,
)
from repro.harness import ResourceLimits, run_check, run_check_isolated
from repro.harness.chaos import ChaosSpec


@pytest.fixture(scope="module")
def tiny_pair():
    original = ghz_state(6)
    compiled = compile_circuit(original, line_architecture(7))
    return original, compiled


class TestIsolatedExecution:
    def test_agrees_with_in_process_on_all_strategies(self, tiny_pair):
        original, compiled = tiny_pair
        for strategy in ("combined", "zx", "alternating", "simulation"):
            config = Configuration(strategy=strategy, seed=0, timeout=30)
            isolated = run_check_isolated(original, compiled, config)
            in_process = EquivalenceCheckingManager(
                original, compiled, config
            ).run()
            assert isolated.equivalence == in_process.equivalence, strategy
            assert isolated.strategy == in_process.strategy

    def test_detects_error_through_the_sandbox(self, tiny_pair):
        original, compiled = tiny_pair
        broken = remove_random_gate(compiled, seed=0)
        config = Configuration(strategy="combined", seed=0, timeout=30)
        result = run_check_isolated(original, broken, config)
        assert result.equivalence is Equivalence.NOT_EQUIVALENT

    def test_statistics_and_perf_cross_the_boundary(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="zx", seed=0, timeout=30)
        result = run_check_isolated(original, compiled, config)
        assert "spiders_remaining" in result.statistics
        assert "perf" in result.statistics
        isolation = result.statistics["isolation"]
        assert isolation["pid"] > 0
        assert isolation["overhead_seconds"] >= 0

    def test_invalid_configuration_is_invalid_input(self, tiny_pair):
        original, compiled = tiny_pair
        with pytest.raises(InvalidInput):
            run_check_isolated(
                original, compiled, Configuration(strategy="imaginary")
            )

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            ResourceLimits(wall_time=-1.0).validate()
        with pytest.raises(ValueError):
            ResourceLimits(memory_mb=0).validate()
        with pytest.raises(ValueError):
            ResourceLimits(memory_mb=True).validate()

    def test_hard_budget_derivation(self):
        config = Configuration(timeout=3.0)
        assert ResourceLimits(grace=2.0).hard_budget(config) == 5.0
        assert ResourceLimits(wall_time=1.0).hard_budget(config) == 1.0
        assert ResourceLimits().hard_budget(Configuration()) is None


@pytest.mark.chaos
class TestChaosContainment:
    def test_hard_hang_is_killed_and_reported_as_timeout(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=0.2)
        start = time.monotonic()
        with pytest.raises(CheckTimeout) as info:
            run_check_isolated(
                original,
                compiled,
                config,
                limits=ResourceLimits(wall_time=1.0),
                chaos=ChaosSpec(mode="hang"),
            )
        elapsed = time.monotonic() - start
        assert info.value.diagnostics["hard"] is True
        assert elapsed < 10.0  # killed, not waited out

    def test_memory_balloon_is_contained(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckOutOfMemory):
            run_check_isolated(
                original,
                compiled,
                config,
                limits=ResourceLimits(memory_mb=64),
                chaos=ChaosSpec(mode="memory_balloon", balloon_mb=1024),
            )

    def test_balloon_ceiling_bounds_even_without_rlimit(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckOutOfMemory):
            run_check_isolated(
                original,
                compiled,
                config,
                chaos=ChaosSpec(mode="memory_balloon", balloon_mb=32),
            )

    def test_hard_crash_is_classified(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckCrashed) as info:
            run_check_isolated(
                original, compiled, config, chaos=ChaosSpec(mode="crash")
            )
        assert info.value.diagnostics.get("signal_name") == "SIGSEGV"
        assert info.value.transient

    def test_external_sigkill_is_worker_lost(self, tiny_pair):
        import signal

        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckWorkerLost):
            run_check_isolated(
                original,
                compiled,
                config,
                chaos=ChaosSpec(mode="crash", signal_number=signal.SIGKILL),
            )

    @pytest.mark.chaos
    def test_third_party_sigkill_is_worker_lost(self, tiny_pair):
        """A kill from *outside* the sandbox (OOM killer, operator) is
        classified as worker loss, not as a timeout or crash."""
        import multiprocessing
        import os
        import signal
        import threading

        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)

        def kill_first_child():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    try:
                        os.kill(children[0].pid, signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover - raced exit
                        pass
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_first_child)
        killer.start()
        try:
            # The hang keeps the child alive until the external kill
            # lands, well inside the 30 s hard budget.
            with pytest.raises(CheckWorkerLost) as info:
                run_check_isolated(
                    original, compiled, config, chaos=ChaosSpec(mode="hang")
                )
        finally:
            killer.join()
        assert info.value.transient

    @pytest.mark.chaos
    def test_external_sigkill_degrades_to_no_information(self, tiny_pair):
        """run_check never raises on worker loss: the verdict degrades to
        NO_INFORMATION with a structured worker_lost failure record."""
        import multiprocessing
        import os
        import signal
        import threading

        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)

        def kill_first_child():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    try:
                        os.kill(children[0].pid, signal.SIGKILL)
                    except ProcessLookupError:  # pragma: no cover - raced exit
                        pass
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_first_child)
        killer.start()
        try:
            result = run_check(
                original,
                compiled,
                config,
                chaos=ChaosSpec(mode="hang"),
                retry=RetryPolicy(max_retries=0),
            )
        finally:
            killer.join()
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "worker_lost"

    def test_injected_exception_round_trips_structured(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckCrashed) as info:
            run_check_isolated(
                original, compiled, config, chaos=ChaosSpec(mode="exception")
            )
        assert "chaos" in info.value.message

    def test_parent_process_unaffected_by_chaos(self, tiny_pair):
        """Chaos armed in the child must never leak into the parent."""
        from repro.harness import chaos as chaos_module

        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        with pytest.raises(CheckCrashed):
            run_check_isolated(
                original, compiled, config, chaos=ChaosSpec(mode="crash")
            )
        assert chaos_module.active_spec() is None
        result = EquivalenceCheckingManager(original, compiled, config).run()
        assert result.considered_equivalent


class TestRunCheckDegradation:
    def test_never_raises_and_records_failure(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        result = run_check(
            original,
            compiled,
            config,
            chaos=ChaosSpec(mode="exception"),
            retry=RetryPolicy(max_retries=0),
        )
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "crashed"

    def test_transient_failures_retried_with_backoff(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        sleeps = []
        result = run_check(
            original,
            compiled,
            config,
            chaos=ChaosSpec(mode="exception"),
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
            sleep=sleeps.append,
        )
        assert result.failure["diagnostics"]["attempts"] == 3
        assert sleeps == [0.01, 0.02]

    @pytest.mark.chaos
    def test_hang_degrades_to_timeout_verdict(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(
            strategy="combined", seed=0, timeout=0.2, max_retries=0
        )
        result = run_check(
            original,
            compiled,
            config,
            limits=ResourceLimits(wall_time=1.0),
            chaos=ChaosSpec(mode="hang"),
        )
        assert result.equivalence is Equivalence.TIMEOUT
        assert result.failure["kind"] == "timeout"
        assert result.failure["diagnostics"]["hard"] is True

    def test_in_process_mode_also_degrades(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="combined", seed=0, timeout=30)
        result = run_check(
            original,
            compiled,
            config,
            isolate=False,
            chaos=ChaosSpec(mode="exception"),
            retry=RetryPolicy(max_retries=0),
        )
        assert result.equivalence is Equivalence.NO_INFORMATION
        assert result.failure["kind"] == "crashed"

    def test_success_path_unchanged(self, tiny_pair):
        original, compiled = tiny_pair
        config = Configuration(strategy="zx", seed=0, timeout=30)
        result = run_check(original, compiled, config)
        assert result.considered_equivalent
        assert result.failure is None


class TestVerdictAgreement:
    """Isolated and in-process runs agree cell-for-cell (small instances)."""

    def test_table1_style_cells_agree(self):
        cases = []
        ghz = ghz_state(5)
        cases.append((ghz, compile_circuit(ghz, line_architecture(6))))
        q = qft(4)
        cases.append((q, compile_circuit(q, line_architecture(5))))
        for original, variant in cases:
            for strategy in ("combined", "zx"):
                config = Configuration(strategy=strategy, seed=0, timeout=30)
                isolated = run_check(
                    original, variant, config, isolate=True
                )
                in_process = EquivalenceCheckingManager(
                    original, variant, config
                ).run()
                assert isolated.equivalence == in_process.equivalence
