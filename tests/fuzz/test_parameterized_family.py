"""The ``parameterized`` fuzz family end to end.

Covers the generator (ansatz templates stay symbolic and deterministic),
the oracle's symbolic matrix (concrete checkers are skipped, the two
``parameterized`` modes are differentialed against valuation-sampled
dense truth) and the runner's witness journal.
"""

import json
import random

import pytest

from repro.circuit.symbolic import is_symbolic_circuit
from repro.fuzz.generator import (
    FAMILIES,
    PARAMETERIZED_RECIPES,
    RECIPES,
    generate_instance,
    random_family_circuit,
)
from repro.fuzz.mutators import SYMBOLIC_MUTATORS
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.runner import FuzzSettings, run_fuzz


class TestParameterizedGenerator:
    def test_family_registered_last(self):
        # The instance RNG mixes FAMILIES.index into its seed, so the
        # new family must not displace the existing indices.
        assert FAMILIES[-1] == "parameterized"
        assert FAMILIES[:4] == ("clifford", "clifford_t", "rotations", "ancilla")

    def test_recipe_pools_are_disjoint(self):
        assert set(PARAMETERIZED_RECIPES) == set(SYMBOLIC_MUTATORS)
        assert not set(PARAMETERIZED_RECIPES) & set(RECIPES)

    @pytest.mark.parametrize("seed", range(6))
    def test_base_circuits_are_symbolic(self, seed):
        circuit = random_family_circuit("parameterized", random.Random(seed))
        assert is_symbolic_circuit(circuit)
        assert 2 <= circuit.num_qubits <= 5

    @pytest.mark.parametrize("seed", range(6))
    def test_instances_deterministic_and_symbolic(self, seed):
        instance1, pair1 = generate_instance(seed, family="parameterized")
        instance2, pair2 = generate_instance(seed, family="parameterized")
        assert instance1.recipe == instance2.recipe
        assert str(pair1.circuit2) == str(pair2.circuit2)
        assert pair1.recipe in PARAMETERIZED_RECIPES
        assert is_symbolic_circuit(pair1.circuit1)
        if pair1.label == "not_equivalent":
            assert isinstance(pair1.witness.get("valuation"), dict)

    def test_concrete_family_draws_unchanged_recipes(self):
        _, pair = generate_instance(0, family="clifford_t")
        assert pair.recipe in RECIPES

    def test_symbolic_recipe_on_concrete_family_is_explicit(self):
        instance, pair = generate_instance(
            0, family="parameterized", recipes=["sym_insert_inverse_pair"]
        )
        assert pair.recipe == "sym_insert_inverse_pair"

    def test_unknown_recipe_rejected(self):
        with pytest.raises(ValueError, match="unknown pair recipe"):
            generate_instance(0, family="parameterized", recipes=["bogus"])


class TestParameterizedOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_matrix_agrees_and_skips_concrete_checkers(self, seed):
        _, pair = generate_instance(seed, family="parameterized")
        report = DifferentialOracle().check(pair)
        assert report.agreed, report.to_dict()
        assert set(report.results) == {"param_symbolic", "param_instantiate"}
        assert report.skipped["dd_alternating"] == "symbolic pair"
        assert report.truth is not None
        truth_negative = report.truth == "not_equivalent"
        assert truth_negative == (pair.label == "not_equivalent")


class TestWitnessJournal:
    def test_neq_pairs_persist_witness_valuations(self, tmp_path):
        settings = FuzzSettings(
            seed=1,
            budget=8,
            family="parameterized",
            corpus_dir=str(tmp_path / "corpus"),
            check_timeout=15.0,
        )
        outcome = run_fuzz(settings)
        assert outcome.exit_code == 0
        planted_neq = outcome.label_counts.get("not_equivalent", 0)
        assert planted_neq > 0, "campaign drew no breaking mutants"
        assert outcome.witnesses_persisted == planted_neq
        journal = tmp_path / "corpus" / "witnesses.jsonl"
        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        assert len(records) == planted_neq
        for record in records:
            assert record["family"] == "parameterized"
            assert isinstance(record["planted_valuation"], dict)
            assert record["truth"] == "not_equivalent"
            assert record["found"] is not None
            assert isinstance(record["found"]["valuation"], dict)

    def test_equivalent_only_campaign_writes_no_journal(self, tmp_path):
        settings = FuzzSettings(
            seed=2,
            budget=3,
            family="clifford_t",
            corpus_dir=str(tmp_path / "corpus"),
            check_timeout=15.0,
        )
        outcome = run_fuzz(settings)
        assert outcome.witnesses_persisted == 0
        assert not (tmp_path / "corpus" / "witnesses.jsonl").exists()
