"""Property-based QASM round-trip tests (satellite of the fuzzing PR).

``circuit_from_qasm(circuit_to_qasm(c))`` must preserve the gate list,
the qubit count and — for widths where dense unitaries are cheap — the
semantics.  The generator sweep also covers the controlled-S family,
which the writer previously could not serialize at all (``cs``/``csdg``
were missing from both the builtin table and the controlled-name map).
"""

import random

import pytest

from repro.circuit import (
    QuantumCircuit,
    circuit_from_qasm,
    circuit_to_qasm,
    circuit_unitary,
    unitaries_equivalent,
)
from repro.fuzz.generator import FAMILIES, random_family_circuit
from tests.conftest import random_circuit


def _roundtrip(circuit: QuantumCircuit) -> QuantumCircuit:
    return circuit_from_qasm(circuit_to_qasm(circuit), name=circuit.name)


class TestRoundTripProperties:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(6))
    def test_family_circuits_roundtrip(self, family, seed):
        circuit = random_family_circuit(family, random.Random(seed))
        back = _roundtrip(circuit)
        assert back.num_qubits == circuit.num_qubits
        assert len(back) == len(circuit)
        assert back.count_ops() == circuit.count_ops()
        assert back.operations == circuit.operations

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_gate_set_roundtrip_preserves_unitary(self, seed):
        circuit = random_circuit(4, 16, seed=seed, gate_set="mixed")
        back = _roundtrip(circuit)
        assert unitaries_equivalent(
            circuit_unitary(back), circuit_unitary(circuit)
        )

    @pytest.mark.parametrize("num_qubits", range(1, 7))
    def test_all_widths_up_to_six(self, num_qubits):
        circuit = random_circuit(
            num_qubits, 12, seed=num_qubits, gate_set="mixed"
        )
        back = _roundtrip(circuit)
        assert back.num_qubits == num_qubits
        assert unitaries_equivalent(
            circuit_unitary(back), circuit_unitary(circuit)
        )

    def test_roundtrip_is_idempotent(self):
        circuit = random_circuit(4, 20, seed=3, gate_set="mixed")
        once = circuit_to_qasm(circuit)
        twice = circuit_to_qasm(circuit_from_qasm(once))
        assert once == twice

    def test_float_params_survive_exactly(self):
        angle = 0.1234567890123456789
        circuit = QuantumCircuit(1).rz(angle, 0)
        back = _roundtrip(circuit)
        assert back.operations[0].params[0] == float(angle)


class TestControlledSRegression:
    def test_cs_serializes_and_parses(self):
        circuit = QuantumCircuit(2).cs(0, 1)
        qasm = circuit_to_qasm(circuit)
        assert "cs " in qasm
        back = circuit_from_qasm(qasm)
        assert back.operations == circuit.operations

    def test_csdg_serializes_and_parses(self):
        circuit = QuantumCircuit(2).add("sdg", [1], controls=[0])
        back = _roundtrip(circuit)
        assert back.operations == circuit.operations

    def test_cs_roundtrip_preserves_unitary(self):
        circuit = QuantumCircuit(2).h(0).h(1).cs(0, 1).cx(0, 1)
        back = _roundtrip(circuit)
        assert unitaries_equivalent(
            circuit_unitary(back), circuit_unitary(circuit)
        )
