"""Shrinking and repro persistence — the planted-bug acceptance path.

A chaos-style lying checker is planted through the oracle's verdict
hook; the campaign must catch the disagreement, shrink the instance and
persist a small QASM repro plus a journal entry into the corpus.
"""

import dataclasses
import json

import pytest

from repro.circuit import QuantumCircuit, circuit_from_qasm
from repro.ec.results import Equivalence
from repro.fuzz import FuzzSettings, run_fuzz
from repro.fuzz.generator import FuzzInstance, generate_instance
from repro.fuzz.shrink import shrink_instance


class TestShrinkInstance:
    def test_greedy_reduction_to_trigger(self):
        instance, _ = generate_instance(
            2, "clifford_t", num_qubits=4, num_gates=18
        )

        def reproduces(candidate: FuzzInstance) -> bool:
            # "Bug" fires whenever the base keeps a two-qubit gate.
            return any(len(op.qubits) >= 2 for op in candidate.base)

        assert reproduces(instance)
        result = shrink_instance(instance, reproduces)
        assert result.shrunk_gates <= 2
        assert reproduces(result.instance)
        assert result.checks <= 200
        assert not result.exhausted

    def test_budget_exhaustion_returns_best_so_far(self):
        instance, _ = generate_instance(
            3, "clifford_t", num_qubits=4, num_gates=18
        )
        result = shrink_instance(instance, lambda _c: True, max_checks=5)
        assert result.exhausted
        assert result.checks == 5
        assert result.shrunk_gates < result.original_gates

    def test_non_reproducing_candidates_rejected(self):
        instance, _ = generate_instance(
            4, "clifford_t", num_qubits=3, num_gates=10
        )
        result = shrink_instance(instance, lambda _c: False, max_checks=50)
        # nothing reproduces, so nothing may be removed
        assert result.shrunk_gates == result.original_gates


class TestPlantedBugEndToEnd:
    @pytest.fixture
    def lying_hook(self):
        def hook(name, pair, result):
            # Planted checker bug: the incremental ZX engine falsely
            # refutes any pair whose second circuit has > 8 gates.
            if name == "zx_incremental" and len(pair.circuit2) > 8:
                return dataclasses.replace(
                    result, equivalence=Equivalence.NOT_EQUIVALENT
                )
            return result

        return hook

    def test_bug_caught_shrunk_and_persisted(self, tmp_path, lying_hook):
        settings = FuzzSettings(
            seed=5,
            budget=6,
            family="clifford_t",
            num_qubits=3,
            num_gates=16,
            corpus_dir=str(tmp_path / "corpus"),
            check_timeout=20.0,
        )
        outcome = run_fuzz(settings, verdict_hook=lying_hook)
        assert outcome.exit_code == 2
        assert outcome.disagreements

        repro = outcome.disagreements[0]
        kinds = {d["kind"] for d in repro.report.disagreements}
        assert "cross_checker" in kinds

        # the minimized base must be genuinely small
        assert len(repro.instance.base) <= 12
        assert repro.shrink_info["shrunk_gates"] <= 12
        assert (
            repro.shrink_info["shrunk_gates"]
            <= repro.shrink_info["original_gates"]
        )

        # ... and persisted as a loadable QASM pair with metadata
        target = tmp_path / "corpus" / repro.path.split("/")[-1]
        assert target.is_dir()
        circuit1 = circuit_from_qasm((target / "circuit1.qasm").read_text())
        circuit2 = circuit_from_qasm((target / "circuit2.qasm").read_text())
        assert len(circuit1) <= 12
        assert isinstance(circuit2, QuantumCircuit)
        meta = json.loads((target / "meta.json").read_text())
        assert meta["oracle"]["disagreements"]
        assert meta["shrink"]["shrunk_gates"] <= 12
        assert meta["instance"]["recipe"] == repro.instance.recipe

        # ... with a journal entry for triage tooling
        journal = (tmp_path / "corpus" / "journal.jsonl").read_text()
        lines = [json.loads(line) for line in journal.splitlines() if line]
        assert any(
            entry.get("key", "").endswith(repro.instance.recipe)
            for entry in lines
        )

    def test_clean_campaign_exits_zero(self, tmp_path):
        settings = FuzzSettings(
            seed=1,
            budget=5,
            family="clifford",
            num_qubits=3,
            num_gates=10,
            corpus_dir=str(tmp_path / "corpus"),
        )
        outcome = run_fuzz(settings)
        assert outcome.exit_code == 0
        assert not outcome.disagreements
        assert not (tmp_path / "corpus").exists()

    def test_campaigns_append_to_one_journal(self, tmp_path, lying_hook):
        corpus = tmp_path / "corpus"
        for seed in (5, 6):
            run_fuzz(
                FuzzSettings(
                    seed=seed,
                    budget=4,
                    family="clifford_t",
                    num_qubits=3,
                    num_gates=16,
                    corpus_dir=str(corpus),
                ),
                verdict_hook=lying_hook,
            )
        journal = (corpus / "journal.jsonl").read_text()
        entries = [
            json.loads(line)
            for line in journal.splitlines()
            if line and "payload" in line
        ]
        assert len(entries) >= 2


class TestJournalLifetime:
    def test_interrupt_mid_campaign_closes_journal(self, tmp_path, monkeypatch):
        """Ctrl-C after the first persisted repro must not leak the
        campaign's journal handle — run_fuzz closes it in ``finally``."""
        from repro.fuzz import runner as runner_module

        opened = []
        real_open = runner_module.open_corpus_journal

        def tracking_open(corpus_dir):
            journal = real_open(corpus_dir)
            opened.append(journal)
            return journal

        monkeypatch.setattr(
            runner_module, "open_corpus_journal", tracking_open
        )

        def hook(name, pair, result):
            # Once the first repro is on disk (the journal exists), the
            # next oracle call simulates the operator's Ctrl-C.
            if opened:
                raise KeyboardInterrupt
            if name == "zx_incremental" and len(pair.circuit2) > 8:
                return dataclasses.replace(
                    result, equivalence=Equivalence.NOT_EQUIVALENT
                )
            return result

        settings = FuzzSettings(
            seed=5,
            budget=6,
            family="clifford_t",
            num_qubits=3,
            num_gates=16,
            corpus_dir=str(tmp_path / "corpus"),
            check_timeout=20.0,
        )
        with pytest.raises(KeyboardInterrupt):
            run_fuzz(settings, verdict_hook=hook)

        # The campaign opened exactly one journal and closed it on the
        # way out, and the already-persisted repro survived the abort.
        assert len(opened) == 1
        assert opened[0]._handle.closed
        journal_text = (tmp_path / "corpus" / "journal.jsonl").read_text()
        assert any(
            "payload" in line for line in journal_text.splitlines()
        )
