"""Cross-feature interaction sweep (satellite of the fuzzing PR).

The bounded compute tables and the incremental ZX worklist engine are
performance features and must never change verdicts: this sweep drives
200 small labeled pairs through the DD checker with a deliberately tiny
compute table (maximum eviction pressure) and through both ZX
simplification engines, asserting verdict equality with the unbounded /
legacy baselines pair by pair.
"""

import dataclasses

import pytest

from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence
from repro.fuzz.generator import FAMILIES, generate_instance
from repro.fuzz.mutators import MutationNotApplicable

NUM_PAIRS = 200


def _pairs():
    pairs = []
    seed = 0
    while len(pairs) < NUM_PAIRS:
        family = FAMILIES[seed % len(FAMILIES)]
        try:
            _, pair = generate_instance(
                seed, family, num_qubits=3, num_gates=8
            )
            pairs.append((seed, pair))
        except MutationNotApplicable:
            pass
        seed += 1
    return pairs


@pytest.fixture(scope="module")
def labeled_pairs():
    return _pairs()


def _verdict(pair, config):
    manager = EquivalenceCheckingManager(
        pair.circuit1, pair.circuit2, config
    )
    return manager.run().equivalence


class TestComputeTablePressure:
    def test_tiny_tables_keep_dd_verdicts(self, labeled_pairs):
        base = Configuration(strategy="alternating", timeout=20.0, seed=0)
        tiny = dataclasses.replace(base, compute_table_size=16)
        unbounded = dataclasses.replace(base, compute_table_size=None)
        mismatches = [
            (seed, pair.recipe)
            for seed, pair in labeled_pairs
            if _verdict(pair, tiny) is not _verdict(pair, unbounded)
        ]
        assert not mismatches, f"verdict drift under eviction: {mismatches}"


class TestIncrementalZxEquivalence:
    def test_incremental_and_legacy_zx_never_contradict(self, labeled_pairs):
        # ZX is an incomplete method: the engines may differ in *power*
        # (one reduces to a clean identity where the other gives up with
        # NO_INFORMATION — seed 151's compiled ancilla pair does exactly
        # that), but two decisive verdicts must never contradict.
        base = Configuration(strategy="zx", timeout=20.0, seed=0)
        incremental = dataclasses.replace(base, incremental_zx=True)
        legacy = dataclasses.replace(base, incremental_zx=False)
        indecisive = {Equivalence.NO_INFORMATION, Equivalence.TIMEOUT}
        contradictions = []
        for seed, pair in labeled_pairs:
            a = _verdict(pair, incremental)
            b = _verdict(pair, legacy)
            if a in indecisive or b in indecisive:
                continue
            positive = {
                Equivalence.EQUIVALENT,
                Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
            }
            if (a in positive) != (b in positive):
                contradictions.append((seed, pair.recipe, a.value, b.value))
        assert not contradictions, f"ZX engines contradict: {contradictions}"

    def test_decisive_zx_verdicts_are_sound(self, labeled_pairs):
        # Neither engine may contradict the metamorphic label.
        from repro.fuzz.mutators import LABEL_EQUIVALENT

        base = Configuration(strategy="zx", timeout=20.0, seed=0)
        unsound = []
        for incremental in (True, False):
            config = dataclasses.replace(base, incremental_zx=incremental)
            for seed, pair in labeled_pairs:
                verdict = _verdict(pair, config)
                if (
                    verdict is Equivalence.NOT_EQUIVALENT
                    and pair.label == LABEL_EQUIVALENT
                ):
                    unsound.append((seed, pair.recipe, incremental))
                if (
                    verdict
                    in (
                        Equivalence.EQUIVALENT,
                        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
                    )
                    and pair.label != LABEL_EQUIVALENT
                ):
                    unsound.append((seed, pair.recipe, incremental))
        assert not unsound, f"unsound ZX verdicts: {unsound}"


class TestCombinedPressure:
    def test_tiny_tables_with_each_zx_engine(self, labeled_pairs):
        # one in four pairs, both knobs stressed at once
        sample = labeled_pairs[::4]
        for incremental in (True, False):
            stressed = Configuration(
                strategy="zx",
                timeout=20.0,
                seed=0,
                compute_table_size=16,
                incremental_zx=incremental,
            )
            reference = Configuration(
                strategy="zx",
                timeout=20.0,
                seed=0,
                incremental_zx=incremental,
            )
            for seed, pair in sample:
                assert _verdict(pair, stressed) is _verdict(
                    pair, reference
                ), f"seed {seed} ({pair.recipe}), incremental={incremental}"
