"""Label soundness of the metamorphic mutators (`repro.fuzz.mutators`).

The whole fuzzing scheme rests on the labels being correct by
construction, so these tests check them against dense unitaries: every
preserving mutant must match the base up to global phase, every breaking
mutant must differ by more than one.
"""

import random

import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, unitaries_equivalent
from repro.ec.permutations import to_logical_form
from repro.fuzz.mutators import (
    BREAKING_MUTATORS,
    LABEL_EQUIVALENT,
    LABEL_NOT_EQUIVALENT,
    MUTATORS,
    PRESERVING_MUTATORS,
    MutationNotApplicable,
)
from tests.conftest import random_circuit


def _logical_unitary(circuit, num_qubits):
    logical, _ = to_logical_form(circuit, num_qubits)
    return circuit_unitary(logical)


def _apply(mutator, circuit, seed):
    return mutator(circuit, random.Random(seed))


class TestPreservingMutators:
    @pytest.mark.parametrize("name", sorted(PRESERVING_MUTATORS))
    @pytest.mark.parametrize("seed", range(4))
    def test_unitary_preserved_up_to_phase(self, name, seed):
        base = random_circuit(4, 14, seed=seed, gate_set="clifford_t")
        try:
            mutant, label, witness = _apply(
                PRESERVING_MUTATORS[name], base, seed
            )
        except MutationNotApplicable:
            pytest.skip(f"{name} not applicable to seed {seed}")
        assert label == LABEL_EQUIVALENT
        assert witness
        n = max(base.num_qubits, mutant.num_qubits)
        assert unitaries_equivalent(
            _logical_unitary(base, n), _logical_unitary(mutant, n)
        )

    def test_commute_needs_commuting_pair(self):
        circuit = QuantumCircuit(1).h(0).t(0)  # H·T never commutes
        with pytest.raises(MutationNotApplicable):
            _apply(PRESERVING_MUTATORS["commute"], circuit, 0)

    def test_swap_relabel_declares_layout(self):
        base = random_circuit(3, 8, seed=1, gate_set="clifford_t")
        mutant, _, witness = _apply(PRESERVING_MUTATORS["swap_relabel"], base, 1)
        assert mutant.initial_layout and mutant.output_permutation
        assert witness["kind"] == "relabeled"

    def test_routed_swaps_adds_explicit_swaps(self):
        base = random_circuit(3, 8, seed=2, gate_set="clifford_t")
        mutant, _, _ = _apply(PRESERVING_MUTATORS["routed_swaps"], base, 2)
        assert mutant.count_ops().get("swap", 0) >= 1
        assert mutant.output_permutation


class TestBreakingMutators:
    @pytest.mark.parametrize("name", sorted(BREAKING_MUTATORS))
    @pytest.mark.parametrize("seed", range(4))
    def test_unitary_actually_differs(self, name, seed):
        base = random_circuit(4, 14, seed=seed, gate_set="clifford_t")
        try:
            mutant, label, witness = _apply(
                BREAKING_MUTATORS[name], base, seed
            )
        except MutationNotApplicable:
            pytest.skip(f"{name} not applicable to seed {seed}")
        assert label == LABEL_NOT_EQUIVALENT
        assert witness["kind"]
        n = max(base.num_qubits, mutant.num_qubits)
        assert not unitaries_equivalent(
            _logical_unitary(base, n), _logical_unitary(mutant, n)
        )

    def test_delete_gate_skips_identity_like_gates(self):
        # A circuit of only identity-like gates leaves nothing deletable,
        # because removing an identity would keep the circuits equivalent
        # and silently break the label.
        circuit = QuantumCircuit(1).add("id", [0]).rz(0.0, 0)
        with pytest.raises(MutationNotApplicable):
            _apply(BREAKING_MUTATORS["delete_gate"], circuit, 0)

    def test_flip_cnot_requires_a_cnot(self):
        circuit = QuantumCircuit(2).h(0).cz(0, 1)
        with pytest.raises(MutationNotApplicable):
            _apply(BREAKING_MUTATORS["flip_cnot"], circuit, 0)

    def test_phase_nudge_on_rotation_free_circuit_inserts_phase(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        mutant, label, witness = _apply(
            BREAKING_MUTATORS["phase_nudge"], circuit, 3
        )
        assert label == LABEL_NOT_EQUIVALENT
        assert witness["kind"] == "phase_inserted"
        assert len(mutant) == len(circuit) + 1


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(MUTATORS))
    def test_same_seed_same_mutation(self, name):
        base = random_circuit(4, 12, seed=7, gate_set="clifford_t")
        try:
            first = _apply(MUTATORS[name], base, 99)
            second = _apply(MUTATORS[name], base, 99)
        except MutationNotApplicable:
            pytest.skip(f"{name} not applicable")
        assert first[0].operations == second[0].operations
        assert first[2] == second[2]
