"""Tier-1 fuzz smoke budget: a short seeded campaign must stay clean.

Marked ``fuzz_smoke`` so CI can select it explicitly
(``pytest -m fuzz_smoke``); the wall-clock cap keeps the budget around
thirty seconds even on slow machines.
"""

import pytest

from repro.cli import main as cli_main
from repro.fuzz import FuzzSettings, run_fuzz


@pytest.mark.fuzz_smoke
class TestFuzzSmoke:
    def test_seeded_smoke_budget_is_clean(self, tmp_path):
        outcome = run_fuzz(
            FuzzSettings(
                seed=0,
                budget=60,
                family="clifford_t",
                corpus_dir=str(tmp_path / "corpus"),
                max_seconds=30.0,
            )
        )
        assert outcome.exit_code == 0, [
            d.report.to_dict() for d in outcome.disagreements
        ]
        assert outcome.pairs_run > 0
        # equivalent and non-equivalent labels both exercised
        assert len(outcome.label_counts) == 2

    def test_cli_contract(self, tmp_path, capsys):
        code = cli_main(
            [
                "fuzz",
                "--seed", "0",
                "--budget", "10",
                "--family", "clifford",
                "--corpus", str(tmp_path / "corpus"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 disagreement(s)" in out
