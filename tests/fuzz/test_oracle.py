"""Tests for the cross-paradigm differential oracle (`repro.fuzz.oracle`)."""

import dataclasses

import pytest

from repro.circuit import QuantumCircuit
from repro.ec import Configuration
from repro.ec.results import Equivalence
from repro.fuzz.generator import LabeledPair, generate_instance
from repro.fuzz.mutators import LABEL_EQUIVALENT, LABEL_NOT_EQUIVALENT
from repro.fuzz.oracle import STRATEGY_MATRIX, DifferentialOracle


def _oracle(**kwargs):
    kwargs.setdefault(
        "configuration", Configuration(timeout=20.0, seed=0)
    )
    return DifferentialOracle(**kwargs)


class TestStrategyMatrix:
    def test_covers_all_seven_strategies(self):
        names = [name for name, _ in STRATEGY_MATRIX]
        assert names == [
            "dd_alternating",
            "dd_reference",
            "zx_incremental",
            "zx_legacy",
            "stabilizer",
            "simulation",
            "static_analysis",
        ]

    def test_checker_participants_isolate_the_analyzer(self):
        # The six checker strategies must run with the static pre-pass
        # disabled: a pre-pass short-circuit would overwrite their own
        # verdicts and destroy the differential isolation (e.g. the
        # simulation participant would stop reporting its own misses).
        for name, overrides in STRATEGY_MATRIX:
            if name == "static_analysis":
                assert overrides["strategy"] == "analysis"
            else:
                assert overrides["static_analysis"] is False, name

    def test_stabilizer_skipped_on_non_clifford(self):
        pair = LabeledPair(
            QuantumCircuit(1).t(0),
            QuantumCircuit(1).t(0),
            LABEL_EQUIVALENT,
            "identity",
        )
        report = _oracle().check(pair)
        assert "stabilizer" in report.skipped
        assert "stabilizer" not in report.results

    def test_stabilizer_runs_on_clifford(self):
        pair = LabeledPair(
            QuantumCircuit(2).h(0).cx(0, 1),
            QuantumCircuit(2).h(0).cx(0, 1),
            LABEL_EQUIVALENT,
            "identity",
        )
        report = _oracle().check(pair)
        assert report.results["stabilizer"].equivalence in (
            Equivalence.EQUIVALENT,
            Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        )


class TestAgreementOnLabeledPairs:
    @pytest.mark.parametrize("family", ("clifford", "clifford_t"))
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_pairs_agree(self, family, seed):
        _, pair = generate_instance(seed, family)
        report = _oracle().check(pair)
        assert report.agreed, report.disagreements

    def test_truth_matches_label_on_small_pairs(self):
        for seed in range(8):
            _, pair = generate_instance(seed, "clifford_t")
            if pair.num_qubits > 8:
                continue
            report = _oracle().check(pair)
            truth_positive = report.truth != Equivalence.NOT_EQUIVALENT.value
            assert truth_positive == (pair.label == LABEL_EQUIVALENT)

    def test_probably_equivalent_miss_is_not_a_disagreement(self):
        # A pure diagonal error: classical stimuli are blind to it, the
        # proving checkers are not — the oracle must record the miss but
        # not flag the simulation as buggy.
        pair = LabeledPair(
            QuantumCircuit(1),
            QuantumCircuit(1).z(0),
            LABEL_NOT_EQUIVALENT,
            "phase_nudge",
        )
        report = _oracle().check(pair)
        assert report.agreed, report.disagreements
        assert report.missed_by_simulation


class TestVerdictHook:
    def test_lying_checker_is_flagged(self):
        def lie(name, pair, result):
            if name == "zx_legacy":
                return dataclasses.replace(
                    result, equivalence=Equivalence.NOT_EQUIVALENT
                )
            return result

        pair = LabeledPair(
            QuantumCircuit(2).h(0).cx(0, 1),
            QuantumCircuit(2).h(0).cx(0, 1),
            LABEL_EQUIVALENT,
            "identity",
        )
        report = _oracle(verdict_hook=lie).check(pair)
        assert not report.agreed
        kinds = {d["kind"] for d in report.disagreements}
        assert "cross_checker" in kinds
        assert "false_negative" in kinds
        negatives = {
            d["negative"]
            for d in report.disagreements
            if d["kind"] == "cross_checker"
        }
        assert negatives == {"zx_legacy"}

    def test_false_positive_against_dense_truth(self):
        def lie(name, pair, result):
            if name == "dd_alternating":
                return dataclasses.replace(
                    result, equivalence=Equivalence.EQUIVALENT
                )
            return result

        pair = LabeledPair(
            QuantumCircuit(2).h(0).cx(0, 1),
            QuantumCircuit(2).h(0).cx(0, 1).x(0),
            LABEL_NOT_EQUIVALENT,
            "gate_inserted",
        )
        report = _oracle(verdict_hook=lie).check(pair)
        assert {
            ("false_positive", "dd_alternating")
        } <= {
            (d["kind"], d.get("checker"))
            for d in report.disagreements
        }

    def test_no_information_never_disagrees(self):
        def degrade(name, pair, result):
            return dataclasses.replace(
                result, equivalence=Equivalence.NO_INFORMATION
            )

        _, pair = generate_instance(1, "clifford")
        report = _oracle(verdict_hook=degrade).check(pair)
        assert report.agreed


class TestLabelVsTruth:
    def test_mislabeled_pair_detected(self):
        # A deliberately wrong label simulates a mutator bug: the dense
        # ground truth must override it and flag the discrepancy.
        pair = LabeledPair(
            QuantumCircuit(1).h(0),
            QuantumCircuit(1).h(0),
            LABEL_NOT_EQUIVALENT,
            "bogus_mutation",
        )
        report = _oracle().check(pair)
        assert {"kind": "label_vs_truth", "label": LABEL_NOT_EQUIVALENT,
                "truth": Equivalence.EQUIVALENT.value} in report.disagreements

    def test_report_serializes(self):
        _, pair = generate_instance(3, "clifford")
        report = _oracle().check(pair)
        payload = report.to_dict()
        assert set(payload) == {
            "label", "truth", "verdicts", "skipped",
            "disagreements", "missed_by_simulation",
        }
        assert all(isinstance(v, str) for v in payload["verdicts"].values())
