"""Label soundness of the symbolic mutators (``repro.fuzz.mutators``).

Same contract as the concrete mutator tests, quantified over parameter
valuations: a preserving symbolic mutant must match the base up to
global phase at *every* valuation sampled, and a breaking mutant must
differ at its own planted witness valuation — which for the coefficient
nudge is the interesting case, because the defect vanishes at the
all-zeros valuation.
"""

import math
import random

import pytest

from repro.circuit import circuit_unitary, unitaries_equivalent
from repro.circuit.symbolic import (
    circuit_parameters,
    instantiate_circuit,
    is_symbolic_circuit,
)
from repro.ec.permutations import to_logical_form
from repro.fuzz.generator import random_family_circuit
from repro.fuzz.mutators import (
    LABEL_EQUIVALENT,
    LABEL_NOT_EQUIVALENT,
    SYMBOLIC_BREAKING_MUTATORS,
    SYMBOLIC_MUTATORS,
    SYMBOLIC_PRESERVING_MUTATORS,
    MutationNotApplicable,
)

_TWO_PI = 2 * math.pi


def _base(seed: int):
    return random_family_circuit("parameterized", random.Random(seed))


def _valuations(circuit, count: int, seed: int):
    rng = random.Random(seed)
    variables = circuit_parameters(circuit)
    samples = [{name: 0.0 for name in variables}]
    samples += [
        {name: rng.uniform(0.0, _TWO_PI) for name in variables}
        for _ in range(count)
    ]
    return samples


def _logical_unitary(circuit, num_qubits, valuation):
    concrete = instantiate_circuit(circuit, valuation)
    logical, _ = to_logical_form(concrete, num_qubits)
    return circuit_unitary(logical)


def _apply(name, circuit, seed):
    return SYMBOLIC_MUTATORS[name](circuit, random.Random(seed))


class TestPreservingSymbolicMutators:
    @pytest.mark.parametrize("name", sorted(SYMBOLIC_PRESERVING_MUTATORS))
    @pytest.mark.parametrize("seed", range(4))
    def test_preserved_at_every_valuation(self, name, seed):
        base = _base(seed)
        try:
            mutant, label, _witness = _apply(name, base, seed + 100)
        except MutationNotApplicable:
            pytest.skip(f"{name} not applicable to seed {seed}")
        assert label == LABEL_EQUIVALENT
        n = max(base.num_qubits, mutant.num_qubits)
        for valuation in _valuations(base, 5, seed):
            u1 = _logical_unitary(base, n, valuation)
            u2 = _logical_unitary(mutant, n, valuation)
            assert unitaries_equivalent(u1, u2), (
                f"{name} broke equivalence at {valuation}"
            )


class TestBreakingSymbolicMutators:
    @pytest.mark.parametrize("name", sorted(SYMBOLIC_BREAKING_MUTATORS))
    @pytest.mark.parametrize("seed", range(4))
    def test_differs_at_witness_valuation(self, name, seed):
        base = _base(seed)
        try:
            mutant, label, witness = _apply(name, base, seed + 100)
        except MutationNotApplicable:
            pytest.skip(f"{name} not applicable to seed {seed}")
        assert label == LABEL_NOT_EQUIVALENT
        valuation = witness["valuation"]
        assert isinstance(valuation, dict) and valuation
        n = max(base.num_qubits, mutant.num_qubits)
        u1 = _logical_unitary(base, n, valuation)
        u2 = _logical_unitary(mutant, n, valuation)
        assert not unitaries_equivalent(u1, u2), (
            f"{name} witness valuation {valuation} does not separate the pair"
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_coefficient_nudge_vanishes_at_zeros(self, seed):
        # The error class only parameterized checking catches: the pair
        # agrees wherever the nudged parameter is zero, so a single
        # concrete check at a lucky valuation would miss it.
        base = _base(seed)
        mutant, _, witness = _apply("sym_coefficient_nudge", base, seed + 100)
        zeros = {name: 0.0 for name in circuit_parameters(base)}
        n = max(base.num_qubits, mutant.num_qubits)
        u1 = _logical_unitary(base, n, zeros)
        u2 = _logical_unitary(mutant, n, zeros)
        assert unitaries_equivalent(u1, u2)
        assert witness["variable"] in zeros


class TestSymbolicMutatorRegistry:
    def test_registries_partition(self):
        assert set(SYMBOLIC_MUTATORS) == (
            set(SYMBOLIC_PRESERVING_MUTATORS)
            | set(SYMBOLIC_BREAKING_MUTATORS)
        )
        assert not (
            set(SYMBOLIC_PRESERVING_MUTATORS)
            & set(SYMBOLIC_BREAKING_MUTATORS)
        )

    def test_mutants_stay_symbolic(self):
        base = _base(0)
        for name in sorted(SYMBOLIC_MUTATORS):
            try:
                mutant, _, _ = _apply(name, base, 7)
            except MutationNotApplicable:
                continue
            assert is_symbolic_circuit(mutant), name

    def test_deterministic_in_seed(self):
        base = _base(1)
        for name in sorted(SYMBOLIC_MUTATORS):
            m1, l1, w1 = _apply(name, base, 11)
            m2, l2, w2 = _apply(name, base, 11)
            assert str(m1) == str(m2) and l1 == l2 and w1 == w2
