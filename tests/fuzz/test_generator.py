"""Tests for the seeded instance generator (`repro.fuzz.generator`)."""

import random

import pytest

from repro.circuit import circuit_to_qasm
from repro.fuzz.generator import (
    FAMILIES,
    FAMILY_SPECS,
    RECIPES,
    FuzzInstance,
    generate_instance,
    random_family_circuit,
)
from repro.fuzz.mutators import (
    LABEL_EQUIVALENT,
    LABEL_NOT_EQUIVALENT,
    BREAKING_MUTATORS,
    PRESERVING_MUTATORS,
)


class TestRandomFamilyCircuit:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_gates_within_family_alphabet(self, family):
        spec = FAMILY_SPECS[family]
        circuit = random_family_circuit(family, random.Random(3))
        # The ancilla family's compute/uncompute scaffolding also uses
        # sdg/tdg (inverses of its own alphabet) and cz payloads.
        allowed = set(spec.gates) | {"sdg", "tdg"}
        for op in circuit:
            base = op.name
            if op.controls:
                base = {"x": "cx", "z": "cz", "p": "cp"}.get(base, base)
            assert base in allowed, f"{base} not in {family} alphabet"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_in_seed(self, family):
        a = random_family_circuit(family, random.Random(11))
        b = random_family_circuit(family, random.Random(11))
        assert circuit_to_qasm(a) == circuit_to_qasm(b)

    def test_size_overrides(self):
        circuit = random_family_circuit(
            "clifford_t", random.Random(0), num_qubits=3, num_gates=7
        )
        assert circuit.num_qubits == 3
        assert len(circuit) == 7

    def test_ancilla_family_adds_wires(self):
        spec = FAMILY_SPECS["ancilla"]
        circuit = random_family_circuit("ancilla", random.Random(5))
        assert circuit.num_qubits > spec.min_qubits

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz family"):
            random_family_circuit("bogus", random.Random(0))


class TestGenerateInstance:
    def test_deterministic_pair(self):
        inst1, pair1 = generate_instance(9, "clifford_t")
        inst2, pair2 = generate_instance(9, "clifford_t")
        assert inst1.describe() == inst2.describe()
        assert circuit_to_qasm(pair1.circuit1) == circuit_to_qasm(pair2.circuit1)
        assert circuit_to_qasm(pair1.circuit2) == circuit_to_qasm(pair2.circuit2)
        assert pair1.label == pair2.label

    def test_labels_match_recipe_class(self):
        for seed in range(20):
            _, pair = generate_instance(seed, "clifford_t")
            if pair.recipe in PRESERVING_MUTATORS or pair.recipe in (
                "compiled",
                "optimized",
            ):
                assert pair.label == LABEL_EQUIVALENT
            else:
                assert pair.recipe in BREAKING_MUTATORS
                assert pair.label == LABEL_NOT_EQUIVALENT

    def test_recipe_restriction_honoured(self):
        for seed in range(5):
            _, pair = generate_instance(
                seed, "clifford", recipes=("insert_inverse_pair",)
            )
            assert pair.recipe == "insert_inverse_pair"

    def test_unknown_recipe_rejected(self):
        with pytest.raises(ValueError, match="unknown pair recipe"):
            generate_instance(0, "clifford", recipes=("bogus",))

    def test_families_diverge_for_same_seed(self):
        qasm = {
            family: circuit_to_qasm(generate_instance(4, family)[0].base)
            for family in FAMILIES
        }
        assert len(set(qasm.values())) > 1

    def test_rebuild_from_shrunk_base_keeps_label(self):
        instance, pair = generate_instance(2, "clifford_t")
        rebuilt = FuzzInstance(
            instance.family,
            instance.seed,
            instance.base,
            instance.recipe,
            instance.recipe_seed,
        ).build_pair()
        assert rebuilt.label == pair.label
        assert circuit_to_qasm(rebuilt.circuit2) == circuit_to_qasm(
            pair.circuit2
        )

    def test_all_recipes_reachable(self):
        seen = set()
        for seed in range(80):
            _, pair = generate_instance(seed, "clifford_t")
            seen.add(pair.recipe)
        # every recipe class shows up in a modest campaign
        assert seen >= {"compiled", "optimized"}
        assert seen & set(PRESERVING_MUTATORS)
        assert seen & set(BREAKING_MUTATORS)
        assert seen <= set(RECIPES)
