"""Scaled-down chaos-soak acceptance run (the 200-job campaign's shape).

One seeded campaign through the real pool: generated pairs with random
transient faults (kill/hang/leak), two planted poison pairs, a verdict
baseline from direct ``run_check``, and a full-cache replay — asserting
the service-level invariants end to end: zero lost jobs, zero leaked
processes, exactly the planted pairs quarantined, verdict parity, and
bit-identical cache replays.
"""

import pytest

from repro.service import SoakSettings, run_soak


@pytest.mark.chaos
class TestChaosSoak:
    def test_scaled_soak_holds_every_invariant(self):
        settings = SoakSettings(
            seed=7,
            jobs=24,
            workers=3,
            fault_rate=0.2,
            poison_pairs=2,
            check_timeout=3.0,
            grace=0.5,
        )
        report = run_soak(settings)
        assert report.ok, report.to_dict()
        # Spelled-out invariants so a regression names what it broke.
        assert report.submitted == report.resolved
        assert report.lost_jobs == 0
        assert report.verdict_mismatches == []
        assert report.poison_mismatches == []
        assert report.cache_mismatches == []
        assert report.quarantined == settings.poison_pairs
        assert report.audit["leaked"] == 0
        # The campaign genuinely exercised the supervisor: faults were
        # injected and workers died and were replaced.
        assert sum(report.faults_injected.values()) > 0
        assert report.worker_deaths > 0
        assert report.worker_restarts > 0
        assert report.cache_hits > 0

    def test_soak_is_deterministic_in_seed(self):
        settings = SoakSettings(
            seed=3,
            jobs=10,
            workers=2,
            fault_rate=0.3,
            poison_pairs=1,
            check_timeout=3.0,
            grace=0.5,
        )
        first = run_soak(settings)
        second = run_soak(settings)
        assert first.ok and second.ok
        assert first.faults_injected == second.faults_injected
        assert first.quarantined == second.quarantined
