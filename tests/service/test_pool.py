"""Supervised worker pool: batches, retries, quarantine, breaker, recycling.

The ``chaos``-marked tests inject deterministic worker faults (crash,
hang, startup death) through the harness chaos layer and assert the
supervisor's contract: no job is ever lost, transient faults are retried
clean, persistent killers are quarantined after two strikes, and a
restart storm trips the circuit breaker instead of looping forever.
"""

import time

import pytest

from repro.bench.algorithms import ghz_state, qft
from repro.compile import compile_circuit, line_architecture
from repro.ec.configuration import Configuration
from repro.ec.results import Equivalence
from repro.errors import PoolBroken, PoolSaturated, RetryPolicy
from repro.harness import run_check
from repro.harness.chaos import ChaosSpec
from repro.service import PoolConfig, VerdictCache, WorkerPool

#: Tiny restart backoff so chaos tests do not sleep through real delays.
_FAST_BACKOFF = RetryPolicy(
    max_retries=0, backoff_base=0.01, backoff_max=0.05, jitter=0.5,
    jitter_seed=0,
)


def _config(**overrides):
    defaults = dict(timeout=10.0, seed=0, max_retries=1)
    defaults.update(overrides)
    return Configuration(**defaults)


@pytest.fixture(scope="module")
def small_pair():
    original = ghz_state(4)
    compiled = compile_circuit(original, line_architecture(5))
    return original, compiled


@pytest.fixture(scope="module")
def other_pair():
    original = qft(3)
    compiled = compile_circuit(original, line_architecture(4))
    return original, compiled


class TestBatches:
    def test_run_batch_matches_direct_run_check(self, small_pair, other_pair):
        pairs = [small_pair, other_pair]
        with WorkerPool(PoolConfig(workers=2, restart_backoff=_FAST_BACKOFF)) as pool:
            results = pool.run_batch(pairs, _config(), timeout=120.0)
        audit = pool.audit()
        assert len(results) == 2
        for (circuit1, circuit2), pooled in zip(pairs, results):
            direct = run_check(circuit1, circuit2, _config(), isolate=False)
            assert pooled.equivalence is direct.equivalence
            service = pooled.statistics["service"]
            assert service["worker_pid"] > 0
            assert service["executions"] == 1
            assert service["strikes"] == 0
        assert audit["leaked"] == 0

    def test_identical_submissions_coalesce(self, small_pair):
        circuit1, circuit2 = small_pair
        with WorkerPool(PoolConfig(workers=1, restart_backoff=_FAST_BACKOFF)) as pool:
            first = pool.submit(circuit1, circuit2, _config())
            second = pool.submit(circuit1, circuit2, _config())
            pool.drain(timeout=120.0)
            counters = pool.counters.as_dict()["counters"]
            assert counters["cache.coalesced"] == 1
            # One execution answered both submissions.
            assert pool.result(first) is pool.result(second)

    def test_saturation_raises_with_retry_hint(self, small_pair, other_pair):
        with WorkerPool(
            PoolConfig(
                workers=1, queue_depth=2, restart_backoff=_FAST_BACKOFF
            )
        ) as pool:
            pool.submit(*small_pair, _config())
            pool.submit(*other_pair, _config())
            with pytest.raises(PoolSaturated) as info:
                pool.submit(*small_pair, _config(seed=1))
            assert info.value.diagnostics["retry_after"] > 0
            pool.drain(timeout=120.0)


class TestCacheIntegration:
    def test_second_batch_is_served_from_cache(self, small_pair, other_pair):
        pairs = [small_pair, other_pair]
        cache = VerdictCache()
        with WorkerPool(
            PoolConfig(workers=2, restart_backoff=_FAST_BACKOFF), cache=cache
        ) as pool:
            fresh = pool.run_batch(pairs, _config(), timeout=120.0)
            replayed = pool.run_batch(pairs, _config(), timeout=120.0)
            counters = pool.counters.as_dict()["counters"]
        assert counters["cache.hit"] == len(pairs)
        assert counters["cache.store"] == len(pairs)
        for first, second in zip(fresh, replayed):
            assert first.equivalence is second.equivalence
            # The replay is the stored payload: no per-run service stamp.
            assert "service" not in second.statistics


@pytest.mark.chaos
class TestFaultSupervision:
    def test_one_shot_crash_is_retried_clean(self, small_pair):
        circuit1, circuit2 = small_pair
        with WorkerPool(PoolConfig(workers=1, restart_backoff=_FAST_BACKOFF)) as pool:
            job_id = pool.submit(
                circuit1,
                circuit2,
                _config(),
                chaos=ChaosSpec(mode="crash"),
                chaos_once=True,
            )
            pool.drain(timeout=120.0)
            result = pool.result(job_id)
        # The fault killed one worker, the retry ran clean, and the
        # verdict matches the fault-free baseline.
        assert result.equivalence is Equivalence.EQUIVALENT
        assert result.statistics["service"]["executions"] == 2
        assert result.statistics["service"]["strikes"] == 1
        assert pool.audit()["leaked"] == 0

    def test_persistent_crasher_quarantined_after_two_strikes(
        self, small_pair
    ):
        circuit1, circuit2 = small_pair
        with WorkerPool(PoolConfig(workers=1, restart_backoff=_FAST_BACKOFF)) as pool:
            job_id = pool.submit(
                circuit1,
                circuit2,
                _config(),
                chaos=ChaosSpec(mode="crash"),
                chaos_once=False,
            )
            pool.drain(timeout=120.0)
            result = pool.result(job_id)
            assert result.equivalence is Equivalence.NO_INFORMATION
            assert result.statistics["quarantined"] is True
            assert result.statistics["strikes"] == 2
            assert len(pool.quarantine) == 1

            # A resubmission is answered from the record: no worker dies.
            deaths_before = pool.counters.as_dict()["counters"][
                "service.worker_deaths"
            ]
            retry_id = pool.submit(circuit1, circuit2, _config())
            replay = pool.result(retry_id)
            counters = pool.counters.as_dict()["counters"]
            assert replay is not None  # answered synchronously
            assert replay.equivalence is Equivalence.NO_INFORMATION
            assert counters["service.poison_rejected"] == 1
            assert counters["service.worker_deaths"] == deaths_before

    def test_persistent_hang_quarantined_as_timeout(self, small_pair):
        circuit1, circuit2 = small_pair
        with WorkerPool(
            PoolConfig(
                workers=1, grace=0.3, restart_backoff=_FAST_BACKOFF
            )
        ) as pool:
            job_id = pool.submit(
                circuit1,
                circuit2,
                _config(timeout=0.3, max_retries=0),
                chaos=ChaosSpec(mode="hang"),
                chaos_once=False,
            )
            pool.drain(timeout=120.0)
            result = pool.result(job_id)
            counters = pool.counters.as_dict()["counters"]
        assert result.equivalence is Equivalence.TIMEOUT
        assert result.statistics["quarantined"] is True
        assert result.statistics["failure"]["kind"] == "timeout"
        assert counters["service.deadline_kills"] == 2

    def test_restart_storm_trips_breaker(self, small_pair):
        circuit1, circuit2 = small_pair
        config = PoolConfig(
            workers=2,
            storm_threshold=3,
            storm_window=30.0,
            restart_backoff=_FAST_BACKOFF,
            startup_chaos=ChaosSpec(mode="crash"),
        )
        pool = WorkerPool(config)
        try:
            job_id = pool.submit(circuit1, circuit2, _config())
            deadline = time.monotonic() + 60.0
            while not pool.broken and time.monotonic() < deadline:
                pool.pump(max_wait=0.05)
            assert pool.broken
            # The queued job was degraded, not lost.
            result = pool.result(job_id)
            assert result.equivalence is Equivalence.NO_INFORMATION
            assert result.statistics["failure"]["kind"] == "pool_broken"
            with pytest.raises(PoolBroken):
                pool.submit(circuit1, circuit2, _config())
            counters = pool.counters.as_dict()["counters"]
            assert counters["service.breaker_trips"] == 1
        finally:
            pool.shutdown(drain=False)
        assert pool.audit()["leaked"] == 0


@pytest.mark.chaos
class TestRecycling:
    def test_worker_recycled_after_job_threshold(self, small_pair, other_pair):
        pairs = [small_pair, other_pair, small_pair, other_pair]
        configs = [_config(seed=index) for index in range(len(pairs))]
        with WorkerPool(
            PoolConfig(
                workers=1,
                max_jobs_per_worker=2,
                restart_backoff=_FAST_BACKOFF,
            )
        ) as pool:
            ids = [
                pool.submit(circuit1, circuit2, configuration)
                for (circuit1, circuit2), configuration in zip(pairs, configs)
            ]
            pool.drain(timeout=120.0)
            results = [pool.result(job_id) for job_id in ids]
            counters = pool.counters.as_dict()["counters"]
        audit = pool.audit()
        assert all(
            result.equivalence is Equivalence.EQUIVALENT for result in results
        )
        # Four jobs through a one-worker pool recycling every two jobs.
        assert counters["service.workers_recycled"] >= 1
        assert counters["service.recycled_threshold"] >= 1
        assert audit["spawned"] >= 2
        assert audit["leaked"] == 0
