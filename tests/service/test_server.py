"""Batch API server/client: round-trips, backpressure, draining shutdown."""

import threading

import pytest

from repro.bench.algorithms import ghz_state, qft
from repro.compile import compile_circuit, line_architecture
from repro.ec.configuration import Configuration
from repro.errors import PoolSaturated, RetryPolicy
from repro.service import PoolConfig, ServiceClient, ServiceServer, WorkerPool
from repro.service.server import (
    circuit_from_payload,
    circuit_to_payload,
    configuration_from_payload,
    configuration_to_payload,
)

_FAST_BACKOFF = RetryPolicy(max_retries=0, backoff_base=0.01, backoff_max=0.05)


def _pairs():
    ghz = ghz_state(4)
    fourier = qft(3)
    return [
        (ghz, compile_circuit(ghz, line_architecture(5))),
        (fourier, compile_circuit(fourier, line_architecture(4))),
    ]


class TestWireFormat:
    def test_circuit_payload_roundtrip(self):
        compiled = compile_circuit(ghz_state(4), line_architecture(5))
        compiled.output_permutation = dict(compiled.output_permutation or {})
        restored = circuit_from_payload(circuit_to_payload(compiled))
        assert len(restored) == len(compiled)
        assert restored.initial_layout == compiled.initial_layout
        assert restored.output_permutation == compiled.output_permutation

    def test_configuration_payload_roundtrip(self):
        config = Configuration(timeout=3.5, seed=9, strategy="zx")
        restored = configuration_from_payload(configuration_to_payload(config))
        assert restored == config
        assert configuration_from_payload(None) is None
        assert configuration_to_payload(None) is None

    def test_unknown_configuration_fields_ignored(self):
        payload = configuration_to_payload(Configuration(seed=3))
        payload["from_a_newer_version"] = True
        assert configuration_from_payload(payload).seed == 3


def _serve(pool):
    """Start a server on a fresh socket; returns (server, thread, path)."""
    import tempfile
    from pathlib import Path

    tmp = tempfile.mkdtemp(prefix="repro-service-test-")
    socket_path = str(Path(tmp) / "service.sock")
    server = ServiceServer(pool, socket_path).start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, socket_path


class TestServerRoundTrip:
    def test_batch_verdicts_stats_and_draining_shutdown(self):
        pool = WorkerPool(
            PoolConfig(workers=2, restart_backoff=_FAST_BACKOFF)
        )
        server, thread, socket_path = _serve(pool)
        pairs = _pairs()
        try:
            with ServiceClient(socket_path) as client:
                assert client.ping()
                results = client.submit_batch(
                    pairs, Configuration(timeout=10.0, seed=0)
                )
                stats = client.stats()
        finally:
            with ServiceClient(socket_path) as closer:
                reply = closer.shutdown_server()
            thread.join(timeout=60.0)
        assert reply["stopping"] is True
        assert not thread.is_alive()
        assert [payload["equivalence"] for payload in results] == [
            "equivalent",
            "equivalent",
        ]
        counters = stats["counters"]["counters"]
        assert counters["service.jobs_completed"] == len(pairs)
        assert stats["quarantined"] == 0
        assert not stats["broken"]
        assert pool.audit()["leaked"] == 0
        import os

        assert not os.path.exists(socket_path)

    def test_oversized_batch_gets_busy_with_retry_after(self):
        pool = WorkerPool(
            PoolConfig(
                workers=1, queue_depth=1, restart_backoff=_FAST_BACKOFF
            )
        )
        server, thread, socket_path = _serve(pool)
        try:
            with ServiceClient(socket_path) as client:
                # A 2-pair batch can never fit a depth-1 queue: every
                # attempt is answered busy, then the client gives up.
                sleeps = []
                with pytest.raises(PoolSaturated):
                    client.submit_batch(
                        _pairs(),
                        Configuration(timeout=10.0, seed=0),
                        max_attempts=3,
                        sleep=sleeps.append,
                    )
                assert len(sleeps) == 3
                assert all(delay > 0 for delay in sleeps)
                stats = client.stats()
            counters = stats["counters"]["counters"]
            assert counters["service.rejected_busy"] == 3
        finally:
            with ServiceClient(socket_path) as closer:
                closer.shutdown_server()
            thread.join(timeout=60.0)
        assert pool.audit()["leaked"] == 0

    def test_unknown_op_is_answered_not_fatal(self):
        pool = WorkerPool(
            PoolConfig(workers=1, restart_backoff=_FAST_BACKOFF)
        )
        server, thread, socket_path = _serve(pool)
        try:
            with ServiceClient(socket_path) as client:
                reply = client._request({"op": "bogus"})
                assert reply["ok"] is False
                assert reply["error"]["kind"] == "invalid_input"
                # The server survived and still answers real requests.
                assert client.ping()
        finally:
            with ServiceClient(socket_path) as closer:
                closer.shutdown_server()
            thread.join(timeout=60.0)
        assert pool.audit()["leaked"] == 0
