"""Verdict cache: content-addressed keys, checksum recovery, compaction."""

import dataclasses
import json

from repro.bench.algorithms import ghz_state
from repro.compile import compile_circuit, line_architecture
from repro.ec.configuration import Configuration
from repro.service.cache import (
    VerdictCache,
    cache_key,
    configuration_fingerprint,
)


def _pair():
    original = ghz_state(3)
    compiled = compile_circuit(original, line_architecture(4))
    return original, compiled


def _payload(verdict="equivalent"):
    return {
        "equivalence": verdict,
        "strategy": "combined",
        "time": 0.01,
        "statistics": {"checks": 1},
    }


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        circuit1, circuit2 = _pair()
        config = Configuration(timeout=5.0, seed=0)
        assert cache_key(circuit1, circuit2, config) == cache_key(
            circuit1, circuit2, config
        )

    def test_sensitive_to_every_component(self):
        circuit1, circuit2 = _pair()
        config = Configuration(timeout=5.0, seed=0)
        base = cache_key(circuit1, circuit2, config)
        # Different circuit content.
        assert cache_key(circuit1, ghz_state(3), config) != base
        # Different configuration (any field participates).
        other = dataclasses.replace(config, seed=1)
        assert cache_key(circuit1, circuit2, other) != base
        # Order matters: (A, B) and (B, A) are distinct jobs.
        assert cache_key(circuit2, circuit1, config) != base

    def test_layout_metadata_changes_the_key(self):
        circuit1, circuit2 = _pair()
        config = Configuration(timeout=5.0, seed=0)
        base = cache_key(circuit1, circuit2, config)
        relabeled = compile_circuit(ghz_state(3), line_architecture(4))
        relabeled.output_permutation = {0: 1, 1: 0, 2: 2, 3: 3}
        assert cache_key(circuit1, relabeled, config) != base

    def test_configuration_fingerprint_covers_all_fields(self):
        config = Configuration(timeout=5.0, seed=0)
        fingerprint = configuration_fingerprint(config)
        for field in dataclasses.fields(Configuration):
            if field.name == "timeout":
                changed = dataclasses.replace(config, timeout=9.0)
            elif field.name == "seed":
                changed = dataclasses.replace(config, seed=99)
            else:
                continue
            assert configuration_fingerprint(changed) != fingerprint


class TestInMemoryCache:
    def test_roundtrip_and_counters(self):
        cache = VerdictCache()
        assert cache.get("k") is None
        assert cache.put("k", _payload())
        assert cache.get("k")["equivalence"] == "equivalent"
        counters = cache.counters.as_dict()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.store"] == 1

    def test_get_returns_a_copy(self):
        cache = VerdictCache()
        cache.put("k", _payload())
        first = cache.get("k")
        first["statistics"]["mutated"] = True
        assert "mutated" not in cache.get("k")["statistics"]

    def test_degraded_results_rejected(self):
        cache = VerdictCache()
        degraded = _payload("no_information")
        degraded["statistics"]["failure"] = {"kind": "crashed"}
        assert not cache.put("k", degraded)
        assert "k" not in cache
        counters = cache.counters.as_dict()["counters"]
        assert counters["cache.rejected_degraded"] == 1


class TestPersistentCache:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path) as cache:
            cache.put("a", _payload())
            cache.put("b", _payload("not_equivalent"))
        with VerdictCache(path) as reopened:
            assert len(reopened) == 2
            assert reopened.get("b")["equivalence"] == "not_equivalent"

    def test_checksum_mismatch_drops_entry_and_compacts(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path) as cache:
            cache.put("good", _payload())
            cache.put("bad", _payload("not_equivalent"))
        # Flip the persisted verdict of one entry without updating its
        # checksum — the signature of on-disk corruption.
        lines = path.read_text().splitlines()
        lines = [
            line.replace("not_equivalent", "equivalent")
            if '"bad"' in line
            else line
            for line in lines
        ]
        path.write_text("\n".join(lines) + "\n")
        with VerdictCache(path) as recovered:
            assert "good" in recovered
            assert "bad" not in recovered
            counters = recovered.counters.as_dict()["counters"]
            assert counters["cache.rejected_checksum"] == 1
            assert counters["cache.compactions"] == 1
        # The compaction rewrote the file: only verified entries remain,
        # and a further reopen is clean.
        with VerdictCache(path) as again:
            assert len(again) == 1
            assert "cache.rejected_checksum" not in (
                again.counters.as_dict()["counters"]
            )

    def test_torn_tail_tolerated_and_compacted(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path) as cache:
            cache.put("whole", _payload())
        with path.open("a") as handle:
            handle.write('{"key": "torn", "payload": {"resu')
        with VerdictCache(path) as recovered:
            assert recovered.get("whole") is not None
            counters = recovered.counters.as_dict()["counters"]
            assert counters["cache.compactions"] == 1
        # Every surviving line is valid JSON after compaction.
        for line in path.read_text().splitlines():
            json.loads(line)
