# Convenience entry points.  Everything runs with PYTHONPATH=src so no
# install step is needed.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint typecheck fuzz fuzz-smoke serve-smoke soak bench bench-portfolio bench-service bench-parameterized

# Tier-1 gate: the full unit-test suite.  When pytest-cov is installed
# (pip install .[test], as CI does) the run also enforces the line-
# coverage floors of tools/coverage_floor.json on repro.ec and
# repro.circuit; without it (the hermetic test container) the suite
# runs plain — the gate degrades, it never blocks on a missing tool.
test:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -x -q \
			--cov=repro.ec --cov=repro.circuit \
			--cov-report=json:coverage.json --cov-report=term && \
		$(PYTHON) tools/check_coverage.py; \
	else \
		$(PYTHON) -m pytest -x -q; \
	fi

# Project-invariant AST lint (always available) plus ruff when installed.
# ruff/mypy are optional-dependency tools ([project.optional-dependencies]
# lint); the targets degrade gracefully where they are not installed so
# `make lint` works in the hermetic test container, while CI installs
# them and gets the full gate.
lint:
	$(PYTHON) tools/check_repro.py --json lint_report.json
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests tools benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install .[lint])"; \
	fi

typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install .[lint])"; \
	fi

# The acceptance fuzz campaign: 300 Clifford+T pairs through the full
# differential oracle.  Exit 0 = all checkers agreed, exit 2 = at least
# one disagreement was shrunk and written to corpus/.
fuzz:
	$(PYTHON) -m repro fuzz --seed 0 --budget 300 --family clifford_t

# The ~30 s seeded smoke budget that also runs inside tier-1.
fuzz-smoke:
	$(PYTHON) -m pytest -m fuzz_smoke -q

# End-to-end service smoke: real server + client over an AF_UNIX socket,
# the same 20-pair batch twice; the second submit must be served from
# the verdict cache and the draining shutdown must leave zero children.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

# The chaos-soak acceptance campaign: 200 jobs through a 4-worker pool
# under seeded kill/hang/leak faults plus two planted poison pairs.
# Exit 0 = zero lost jobs, zero zombies, verdict parity with run_check.
soak:
	$(PYTHON) -m repro soak --jobs 200 --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate BENCH_portfolio.json: sequential combined schedule vs the
# concurrent strategy portfolio on Table-1-style compiled cells.
bench-portfolio:
	$(PYTHON) benchmarks/bench_portfolio.py

# Regenerate BENCH_service.json: per-job fork sandbox vs the supervised
# worker pool vs a full verdict-cache replay.
bench-service:
	$(PYTHON) benchmarks/bench_service.py

# Regenerate BENCH_parameterized.json: symbolic-first vs
# instantiate-only parameterized equivalence checking on seeded ansatz
# pairs.
bench-parameterized:
	$(PYTHON) benchmarks/bench_parameterized.py
