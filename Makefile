# Convenience entry points.  Everything runs with PYTHONPATH=src so no
# install step is needed.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test fuzz fuzz-smoke bench

# Tier-1 gate: the full unit-test suite.
test:
	$(PYTHON) -m pytest -x -q

# The acceptance fuzz campaign: 300 Clifford+T pairs through the full
# differential oracle.  Exit 0 = all checkers agreed, exit 2 = at least
# one disagreement was shrunk and written to corpus/.
fuzz:
	$(PYTHON) -m repro fuzz --seed 0 --budget 300 --family clifford_t

# The ~30 s seeded smoke budget that also runs inside tier-1.
fuzz-smoke:
	$(PYTHON) -m pytest -m fuzz_smoke -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
