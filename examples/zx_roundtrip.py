"""ZX round-trip optimization, verified by three independent engines.

Optimizes Clifford circuits through the ZX pipeline the paper's references
[28]/[29] describe — convert to a graph-like diagram, ``full_reduce``,
extract a circuit back — and then verifies the optimization with all three
engines of this reproduction: the DD alternating checker, the ZX checker,
and the Clifford stabilizer tableau.

Run:  python examples/zx_roundtrip.py
"""

import random

from repro.bench.algorithms import ghz_state, graph_state, random_clifford_t
from repro.circuit import QuantumCircuit
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.zx.optimize import zx_optimize


def redundant_clifford(num_qubits: int, seed: int) -> QuantumCircuit:
    """A deliberately wasteful Clifford circuit."""
    rng = random.Random(seed)
    circuit = random_clifford_t(num_qubits, 40, t_fraction=0.0, seed=seed)
    # sprinkle in cancelling pairs the round trip should eat
    for _ in range(10):
        q = rng.randrange(num_qubits)
        circuit.h(q).h(q)
        a, b = rng.sample(range(num_qubits), 2)
        circuit.cz(a, b).cz(a, b)
    return circuit


def main() -> None:
    circuits = [
        ghz_state(6),
        graph_state(5, seed=1),
        redundant_clifford(4, seed=7),
        redundant_clifford(5, seed=8),
    ]
    for circuit in circuits:
        optimized, extracted = zx_optimize(circuit)
        tag = "extracted" if extracted else "fallback"
        print(f"{circuit.name}: {len(circuit)} -> {len(optimized)} gates "
              f"[{tag}], 2q: {circuit.two_qubit_gate_count()} -> "
              f"{optimized.two_qubit_gate_count()}")
        for strategy in ("alternating", "zx", "stabilizer"):
            result = EquivalenceCheckingManager(
                circuit, optimized, Configuration(strategy=strategy, seed=0)
            ).run()
            print(f"  {strategy:>12}: {result.equivalence.value}")
        print()


if __name__ == "__main__":
    main()
