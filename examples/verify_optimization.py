"""Use-case 2 of the case study: verifying optimized circuits.

Mirrors the "Optimized Circuits" block of the paper's Table 1: reversible
RevLib-style circuits (synthesized from truth tables into multi-controlled
Toffoli netlists) and quantum algorithms are lowered to the device basis
and optimized; the original and optimized versions are then checked for
equivalence.  The DD checker consumes the multi-controlled gates natively
(like QCEC), while the ZX checker decomposes them first (like PyZX) —
exactly the asymmetry the paper discusses.

Run:  python examples/verify_optimization.py
"""

from repro.bench import algorithms, reversible
from repro.bench.errors import remove_random_gate
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.ec import Configuration, EquivalenceCheckingManager


def check(original, optimized, strategy):
    manager = EquivalenceCheckingManager(
        original, optimized, Configuration(strategy=strategy, seed=0)
    )
    return manager.run()


def main() -> None:
    originals = [
        reversible.synthesize(reversible.random_reversible_function(5, seed=1)),
        reversible.synthesize(reversible.plus_constant_mod(6, 13)),
        reversible.synthesize(reversible.hidden_weighted_bit(5)),
        algorithms.grover(4),
        algorithms.qft(6),
    ]

    for original in originals:
        lowered = decompose_to_basis(original)
        optimized = optimize_circuit(lowered, level=2)
        print(f"{original.name}: |G| = {original.num_gates} "
              f"(MCT netlist) -> basis {lowered.num_gates} "
              f"-> optimized {optimized.num_gates}")

        for strategy in ("combined", "zx"):
            result = check(original, optimized, strategy)
            print(f"  {strategy:>8}: {result.equivalence.value:32} "
                  f"({result.time:.2f}s)")

        # the non-equivalent configuration: one gate missing
        broken = remove_random_gate(optimized, seed=7)
        dd = check(original, broken, "combined")
        zx = check(original, broken, "zx")
        print(f"  1 gate missing: DD -> {dd.equivalence.value} "
              f"(after {dd.statistics.get('simulations_run', '-')} "
              f"simulation(s)), ZX -> {zx.equivalence.value}\n")


if __name__ == "__main__":
    main()
