"""Quickstart: build, compile and verify the paper's GHZ example.

Reproduces the paper's running example (Figures 1, 2, 4 and 6): prepare a
3-qubit GHZ state, compile it to a 5-qubit linear architecture (which
forces a SWAP insertion and a permuted output), and verify the compilation
result with every equivalence-checking strategy.

Run:  python examples/quickstart.py
"""

from repro import QuantumCircuit, verify
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, EquivalenceCheckingManager


def main() -> None:
    # --- Fig. 1a: GHZ state preparation ---------------------------------
    ghz = QuantumCircuit(3, name="ghz")
    ghz.h(0)
    ghz.cx(0, 1)
    ghz.cx(0, 2)
    print("original circuit:", ghz.name, "-", ghz.num_gates, "gates")

    # --- Fig. 2: compilation to a 5-qubit line --------------------------
    device = line_architecture(5)
    compiled = compile_circuit(ghz, device, layout_method="trivial")
    print(
        f"compiled to {device.name}: {compiled.num_gates} gates, "
        f"output permutation {compiled.output_permutation}"
    )

    # --- one-line verification (combined DD strategy, as in QCEC) -------
    result = verify(ghz, compiled)
    print(f"verify(ghz, compiled) -> {result}")
    assert result.considered_equivalent

    # --- every paradigm the paper compares ------------------------------
    for strategy in ("construction", "alternating", "simulation", "zx"):
        manager = EquivalenceCheckingManager(
            ghz, compiled, Configuration(strategy=strategy, seed=0)
        )
        outcome = manager.run()
        print(f"  {strategy:>12}: {outcome.equivalence.value:32} "
              f"({outcome.time * 1000:.1f} ms)")

    # --- and a broken circuit is caught ---------------------------------
    from repro.bench.errors import flip_random_cnot

    broken = flip_random_cnot(compiled, seed=1)
    bad = verify(ghz, broken)
    print(f"verify(ghz, flipped-CNOT) -> {bad.equivalence.value}")
    assert not bad.considered_equivalent


if __name__ == "__main__":
    main()
