"""Exploring the two paradigms' complementary strengths (paper Section 6.2).

Demonstrates the discussion points of the case study on small instances:

1. *Structure*: reversible/Clifford+T circuits keep decision diagrams tiny,
   while the same DD representation of an arbitrary-angle circuit grows —
   and under injected numerical noise the node merging breaks down (the
   "blow-up" of Section 6.2).
2. *Robustness*: the ZX spider count never increases during reduction, for
   either circuit class.
3. *Falsification*: random-stimuli simulation finds injected errors within
   a few runs; the ZX reduction merely gets stuck ("a strong indication,
   but not a proof").

Run:  python examples/paradigm_tradeoffs.py
"""

import math
import random

from repro.bench import algorithms, reversible
from repro.bench.errors import remove_random_gate
from repro.circuit import QuantumCircuit
from repro.dd import DDPackage, matrix_dd_size
from repro.dd.gates import circuit_dd
from repro.ec import Configuration, simulation_check, zx_check
from repro.zx import circuit_to_zx, full_reduce


def perturbed(circuit: QuantumCircuit, magnitude: float, seed: int = 0):
    """Copy of the circuit with tiny random errors on every angle."""
    rng = random.Random(seed)
    noisy = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_noisy")
    for op in circuit:
        params = tuple(
            p + rng.uniform(-magnitude, magnitude) for p in op.params
        )
        noisy.add(op.name, op.targets, op.controls, params)
    return noisy


def dd_size_of(circuit) -> int:
    pkg = DDPackage()
    return matrix_dd_size(circuit_dd(pkg, circuit))


def main() -> None:
    print("1) structure: DD size of the full system matrix")
    adder = reversible.plus_constant_adder_circuit(6, 13)
    qft = algorithms.qft(6)
    print(f"   {adder.name:24} ({adder.num_gates:4} gates): "
          f"{dd_size_of(adder):5} DD nodes")
    print(f"   {qft.name:24} ({qft.num_gates:4} gates): "
          f"{dd_size_of(qft):5} DD nodes")

    print("\n2) numerical noise: DD node merging degrades, ZX does not")
    from repro.compile.decompose import decompose_to_basis

    base = decompose_to_basis(algorithms.qft(6))
    for magnitude in (0.0, 1e-13, 1e-9, 1e-6):
        noisy = perturbed(base, magnitude)
        size = dd_size_of(noisy)
        diagram = circuit_to_zx(noisy)
        spiders_before = diagram.num_spiders
        full_reduce(diagram)
        print(f"   angle noise {magnitude:8.0e}: DD {size:6} nodes | "
              f"ZX {spiders_before:4} -> {diagram.num_spiders:4} spiders")

    print("\n3) falsification: simulations vs. stuck ZX reduction")
    grover = algorithms.grover(4)
    lowered = decompose_to_basis(grover)
    broken = remove_random_gate(lowered, seed=4)
    sim = simulation_check(grover, broken, Configuration(seed=0))
    zx = zx_check(grover, broken, Configuration())
    print(f"   simulation: {sim.equivalence.value} after "
          f"{sim.statistics['simulations_run']} run(s)")
    print(f"   zx        : {zx.equivalence.value} with "
          f"{zx.statistics['spiders_remaining']} spiders left")


if __name__ == "__main__":
    main()
