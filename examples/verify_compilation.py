"""Use-case 1 of the case study: verifying compilation flow results.

Compiles several of the paper's benchmark algorithms to the 65-qubit
heavy-hex "Manhattan" architecture and verifies each compilation with both
paradigms, printing per-instance statistics — including the intermediate
DD size trace that illustrates the alternating scheme of the paper's
Fig. 4 (the product ``G' G†`` stays near the identity throughout), and the
spider counts of the ZX reduction.

Run:  python examples/verify_compilation.py
"""

from repro.bench import algorithms
from repro.compile import compile_circuit, manhattan_architecture
from repro.ec import AlternatingChecker, Configuration, zx_check


def main() -> None:
    device = manhattan_architecture()
    print(f"target device: {device.name} "
          f"({device.num_qubits} qubits, {len(device.edges)} couplers)\n")

    benchmarks = [
        algorithms.ghz_state(16),
        algorithms.graph_state(12, seed=0),
        algorithms.qft(6),
        algorithms.qpe_exact(5),
        algorithms.grover(4),
    ]

    for original in benchmarks:
        compiled = compile_circuit(original, device)
        print(f"{original.name}: |G| = {original.num_gates}, "
              f"|G'| = {compiled.num_gates}")

        # --- DD paradigm: alternating scheme with size trace (Fig. 4) ---
        config = Configuration(
            strategy="alternating", trace_sizes=True, oracle="proportional"
        )
        dd = AlternatingChecker(original, compiled, config).run()
        trace = dd.statistics["dd_size_trace"]
        print(f"  DD : {dd.equivalence.value:32} {dd.time:6.2f}s  "
              f"max intermediate DD size = {dd.statistics['max_dd_size']} "
              f"nodes (identity would be {compiled.num_qubits})")
        sparkline = "".join(
            " .:-=+*#%@"[min(9, size * 10 // (max(trace) + 1))]
            for size in trace[:: max(1, len(trace) // 60)]
        )
        print(f"       size trace |{sparkline}|")

        # --- ZX paradigm: reduce G'G† to bare wires ----------------------
        zx = zx_check(original, compiled, Configuration(strategy="zx"))
        print(f"  ZX : {zx.equivalence.value:32} {zx.time:6.2f}s  "
              f"{zx.statistics['initial_spiders']} -> "
              f"{zx.statistics['spiders_remaining']} spiders, "
              f"{zx.statistics['zx_rewrites']} rewrites\n")


if __name__ == "__main__":
    main()
